"""Arrival traces: a JSONL record/replay format for workload timelines.

A scenario's *workload timeline* — which applications arrive when, with which
requirements, input sizes and scheduled requirement switches — is exactly
what a measurement campaign on a real device produces.  :class:`ArrivalTrace`
captures that timeline as plain data:

* :meth:`ArrivalTrace.from_scenario` records the timeline of any scenario
  (hand-written, generated, composed or fuzzed);
* :meth:`ArrivalTrace.save` / :meth:`ArrivalTrace.load` round-trip it through
  a line-oriented JSONL file (one header line, one line per application, one
  line per scheduled event) that external tools can write;
* :meth:`ArrivalTrace.to_scenario` reconstitutes a runnable
  :class:`~repro.workloads.scenarios.Scenario`, bit-identical in simulated
  behaviour to the recording (DNN applications are rebuilt from the recorded
  increment count of the case-study dynamic-DNN family, preserving which
  applications shared one model; traces recorded from other DNN families are
  rejected at replay via the recorded input size rather than silently
  replayed with the wrong network).

The registered ``trace`` scenario exposes replay to specs and the CLI: a
spec/TOML with ``scenario = "trace"`` and ``scenario_params.path`` replays a
trace file through the standard experiment machinery, and without a path it
round-trips a named source scenario in memory (a permanent regression check
that recording is lossless).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.dnn.training import IncrementalTrainer, TrainedDynamicDNN
from repro.dnn.zoo import make_dynamic_cifar_dnn
from repro.ioutils import atomic_write_text
from repro.platforms.core import CoreType
from repro.workloads.requirements import Requirements
from repro.workloads.scenarios import (
    Scenario,
    ScenarioEvent,
    ScenarioEventKind,
    build_scenario,
    register_scenario,
)
from repro.workloads.tasks import (
    Application,
    DNNApplication,
    GenericApplication,
    ResourceDemand,
    TaskKind,
)

__all__ = ["ArrivalTrace", "TraceFormatError"]

#: Header discriminator of the JSONL format.
TRACE_FORMAT = "repro-arrival-trace"
#: Format version written by this module (readers reject newer versions).
TRACE_VERSION = 1

_REQUIREMENT_FIELDS = (
    "max_latency_ms",
    "max_energy_mj",
    "max_power_mw",
    "min_accuracy_percent",
    "target_fps",
    "priority",
)


class TraceFormatError(ValueError):
    """An arrival-trace file that cannot be parsed or reconstituted."""


def _requirements_to_dict(requirements: Requirements) -> Dict[str, object]:
    payload: Dict[str, object] = {}
    for name in _REQUIREMENT_FIELDS:
        value = getattr(requirements, name)
        if value is not None:
            payload[name] = value
    return payload


def _requirements_from_dict(payload: Dict[str, object]) -> Requirements:
    unknown = sorted(set(payload) - set(_REQUIREMENT_FIELDS))
    if unknown:
        raise TraceFormatError(f"unknown requirement fields {unknown}")
    return Requirements(**payload)  # type: ignore[arg-type]


@dataclass
class ArrivalTrace:
    """A recorded workload timeline, serialisable to/from JSONL.

    Attributes
    ----------
    scenario_name / platform_name / duration_ms:
        Identity of the recorded scenario (the platform is a default for
        replay; :meth:`to_scenario` can re-target).
    applications:
        One plain-dict record per application: id, kind, arrival/departure,
        requirements and kind-specific payload (dynamic-DNN shape and input
        size for inference applications, resource demand for generic ones).
    events:
        One plain-dict record per scheduled extra event (requirement
        switches, scripted arrivals/departures).
    """

    scenario_name: str
    platform_name: str
    duration_ms: float
    applications: List[Dict[str, object]] = field(default_factory=list)
    events: List[Dict[str, object]] = field(default_factory=list)

    # -------------------------------------------------------------- recording

    @classmethod
    def from_scenario(cls, scenario: Scenario) -> "ArrivalTrace":
        """Record the workload timeline of a scenario.

        DNN applications record the increment count and input size of their
        dynamic DNN plus a ``model_ref``: applications that share one trained
        model instance (and therefore co-scale — switching one switches the
        other) share a ref, so replay preserves the sharing structure.
        """
        trace = cls(
            scenario_name=scenario.name,
            platform_name=scenario.platform_name,
            duration_ms=scenario.duration_ms,
        )
        model_refs: Dict[int, int] = {}
        for application in scenario.applications:
            record: Dict[str, object] = {
                "app_id": application.app_id,
                "kind": application.kind.value,
                "arrival_ms": application.arrival_time_ms,
                "departure_ms": application.departure_time_ms,
                "memory_footprint_mb": application.memory_footprint_mb,
                "requirements": _requirements_to_dict(application.requirements),
            }
            if isinstance(application, DNNApplication):
                ref = model_refs.setdefault(id(application.trained), len(model_refs))
                record["model_ref"] = ref
                record["num_increments"] = application.dynamic_dnn.num_increments
                record["input_size"] = list(application.dynamic_dnn.base_model.input_shape)
                record["preprocessing_cores"] = application.preprocessing_cores
            elif isinstance(application, GenericApplication):
                record["demand"] = {
                    "core_type": application.demand.core_type.value,
                    "cores": application.demand.cores,
                    "utilisation": application.demand.utilisation,
                    "min_frequency_mhz": application.demand.min_frequency_mhz,
                }
            trace.applications.append(record)
        for event in scenario.extra_events:
            trace.events.append(
                {
                    "time_ms": event.time_ms,
                    "kind": event.kind.value,
                    "app_id": event.app_id,
                    "requirements": (
                        None
                        if event.new_requirements is None
                        else _requirements_to_dict(event.new_requirements)
                    ),
                }
            )
        return trace

    # --------------------------------------------------------------- file I/O

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as JSONL: header, application records, events.

        The write is atomic (same-directory temp file + rename): a crash
        mid-save leaves any existing file untouched instead of a truncated
        JSONL that :meth:`load` then rejects as corrupt.
        """
        lines = [
            json.dumps(
                {
                    "format": TRACE_FORMAT,
                    "version": TRACE_VERSION,
                    "scenario": self.scenario_name,
                    "platform": self.platform_name,
                    "duration_ms": self.duration_ms,
                },
                sort_keys=True,
            )
        ]
        for record in self.applications:
            lines.append(json.dumps({"record": "application", **record}, sort_keys=True))
        for record in self.events:
            lines.append(json.dumps({"record": "event", **record}, sort_keys=True))
        atomic_write_text(path, "\n".join(lines) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ArrivalTrace":
        """Read a trace written by :meth:`save` (or a compatible tool)."""
        path = Path(path)
        try:
            lines = [
                line for line in path.read_text(encoding="utf-8").splitlines() if line.strip()
            ]
        except (OSError, UnicodeDecodeError) as error:
            raise TraceFormatError(f"cannot read trace file {path}: {error}") from None
        if not lines:
            raise TraceFormatError(f"trace file {path} is empty")
        try:
            parsed = [json.loads(line) for line in lines]
        except json.JSONDecodeError as error:
            raise TraceFormatError(f"invalid JSON in {path}: {error}") from None
        header = parsed[0]
        if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
            raise TraceFormatError(
                f"{path} is not a {TRACE_FORMAT} file (missing/unknown header)"
            )
        try:
            version = int(header.get("version", 0))
            duration_ms = float(header["duration_ms"])
        except (KeyError, TypeError, ValueError) as error:
            raise TraceFormatError(f"invalid trace header in {path}: {error!r}") from None
        if version > TRACE_VERSION:
            raise TraceFormatError(
                f"{path} has version {header['version']}; this reader supports "
                f"up to {TRACE_VERSION}"
            )
        trace = cls(
            scenario_name=str(header.get("scenario", path.stem)),
            platform_name=str(header.get("platform", "odroid_xu3")),
            duration_ms=duration_ms,
        )
        for record in parsed[1:]:
            if not isinstance(record, dict):
                raise TraceFormatError(f"non-table record line {record!r} in {path}")
            kind = record.pop("record", None)
            if kind == "application":
                trace.applications.append(record)
            elif kind == "event":
                trace.events.append(record)
            else:
                raise TraceFormatError(f"unknown record type {kind!r} in {path}")
        return trace

    # ----------------------------------------------------------------- replay

    def to_scenario(
        self,
        platform_name: Optional[str] = None,
        name: Optional[str] = None,
    ) -> Scenario:
        """Reconstitute a runnable scenario from the recorded timeline.

        DNN applications are rebuilt from the case-study dynamic-DNN family
        at the recorded increment count; records sharing a ``model_ref``
        share one trained instance, exactly like the recording.  The platform
        defaults to the recorded one.
        """
        trained_by_ref: Dict[object, TrainedDynamicDNN] = {}
        applications: List[Application] = []
        for index, record in enumerate(self.applications):
            try:
                applications.append(self._application_from(record, trained_by_ref, index))
            except (KeyError, TypeError, ValueError) as error:
                raise TraceFormatError(
                    f"invalid application record {record.get('app_id')!r}: {error}"
                ) from None
        events = []
        for record in self.events:
            try:
                payload = record.get("requirements")
                events.append(
                    ScenarioEvent(
                        time_ms=float(record["time_ms"]),
                        kind=ScenarioEventKind(record["kind"]),
                        app_id=str(record["app_id"]),
                        new_requirements=(
                            None if payload is None else _requirements_from_dict(payload)
                        ),
                    )
                )
            except (KeyError, TypeError, ValueError) as error:
                raise TraceFormatError(f"invalid event record {record!r}: {error}") from None
        return Scenario(
            name=name or f"trace({self.scenario_name})",
            platform_name=platform_name or self.platform_name,
            applications=applications,
            duration_ms=self.duration_ms,
            extra_events=events,
            description=f"Replay of the recorded arrival trace of {self.scenario_name!r}.",
        )

    @staticmethod
    def _application_from(
        record: Dict[str, object],
        trained_by_ref: Dict[object, TrainedDynamicDNN],
        index: int,
    ) -> Application:
        kind = TaskKind(record["kind"])
        requirements = _requirements_from_dict(dict(record.get("requirements") or {}))
        departure = record.get("departure_ms")
        common = {
            "app_id": str(record["app_id"]),
            "kind": kind,
            "requirements": requirements,
            "arrival_time_ms": float(record["arrival_ms"]),  # type: ignore[arg-type]
            "departure_time_ms": None if departure is None else float(departure),  # type: ignore[arg-type]
            "memory_footprint_mb": float(record["memory_footprint_mb"]),  # type: ignore[arg-type]
        }
        if kind is TaskKind.DNN_INFERENCE:
            # model_ref encodes which applications deliberately co-scale one
            # model; an external trace that omits it must get an independent
            # model per record, not be silently fused onto a shared one.
            raw_ref = record.get("model_ref")
            ref: object = ("auto", index) if raw_ref is None else int(raw_ref)  # type: ignore[arg-type]
            num_increments = int(record.get("num_increments", 4))  # type: ignore[arg-type]
            trained = trained_by_ref.get(ref)
            if trained is None:
                trained = IncrementalTrainer().train(make_dynamic_cifar_dnn(num_increments))
                trained_by_ref[ref] = trained
            elif trained.dynamic_dnn.num_increments != num_increments:
                raise TraceFormatError(
                    f"model_ref {ref} recorded with conflicting increment counts"
                )
            # Replay reconstitutes the case-study dynamic-DNN family; a trace
            # recorded from a different model must fail loudly rather than
            # silently replay the wrong network.
            recorded_input = record.get("input_size")
            rebuilt_input = list(trained.dynamic_dnn.base_model.input_shape)
            if recorded_input is not None and list(recorded_input) != rebuilt_input:
                raise TraceFormatError(
                    f"recorded input size {recorded_input} is not the case-study "
                    f"family's {rebuilt_input}; this DNN cannot be reconstituted"
                )
            return DNNApplication(
                trained=trained,
                preprocessing_cores=int(record.get("preprocessing_cores", 1)),  # type: ignore[arg-type]
                **common,  # type: ignore[arg-type]
            )
        demand_payload = dict(record.get("demand") or {})
        min_frequency = demand_payload.get("min_frequency_mhz")
        demand = ResourceDemand(
            core_type=CoreType(demand_payload["core_type"]),
            cores=int(demand_payload.get("cores", 1)),  # type: ignore[arg-type]
            utilisation=float(demand_payload.get("utilisation", 0.8)),  # type: ignore[arg-type]
            min_frequency_mhz=None if min_frequency is None else float(min_frequency),  # type: ignore[arg-type]
        )
        return GenericApplication(demand=demand, **common)  # type: ignore[arg-type]


# ----------------------------------------------------------------- registry


@register_scenario("trace", seeded=False, params=("path", "source", "source_seed", "replatform"))
def trace_scenario(
    seed: int = 0,
    platform_name: str = "odroid_xu3",
    path: Optional[str] = None,
    source: str = "rush_hour",
    source_seed: int = 0,
    replatform: bool = False,
) -> Scenario:
    """Replay an arrival trace: a JSONL file (path), else a round-trip of `source`.

    With ``scenario_params.path`` the named JSONL file is loaded and
    replayed.  A spec cannot express "the platform the trace was recorded
    on" (its ``platform`` field always has a value), so a platform that
    differs from the recorded one is rejected unless
    ``scenario_params.replatform`` is true — otherwise a trace recorded on
    another board would silently replay on the spec's default platform as a
    different experiment.  Without a path, the ``source`` registry scenario
    (at ``source_seed``) is recorded to an in-memory trace and replayed —
    simulated behaviour must be bit-identical to running the source
    directly, which the golden-fingerprint table locks in.
    """
    if path is not None:
        loaded = ArrivalTrace.load(path)
        if not replatform and loaded.platform_name != platform_name:
            raise TraceFormatError(
                f"trace {path} was recorded on {loaded.platform_name!r} but the "
                f"spec requests {platform_name!r}; set platform = "
                f"{loaded.platform_name!r} or scenario_params.replatform = true "
                "to re-target deliberately"
            )
        return loaded.to_scenario(platform_name=platform_name)
    recorded = ArrivalTrace.from_scenario(
        build_scenario(source, seed=source_seed, platform_name=platform_name)
    )
    return recorded.to_scenario(platform_name=platform_name)
