"""Arrival traces: a streaming JSONL record/replay format for workload timelines.

A scenario's *workload timeline* — which applications arrive when, with which
requirements, input sizes and scheduled requirement switches — is exactly
what a measurement campaign on a real device produces.  :class:`ArrivalTrace`
captures that timeline as plain data:

* :meth:`ArrivalTrace.from_scenario` records the timeline of any scenario
  (hand-written, generated, composed or fuzzed);
* :meth:`ArrivalTrace.save` / :meth:`ArrivalTrace.load` round-trip it through
  a line-oriented JSONL file (one header line, one line per application, one
  line per scheduled event) that external tools can write;
* :meth:`ArrivalTrace.to_scenario` reconstitutes a runnable
  :class:`~repro.workloads.scenarios.Scenario`, bit-identical in simulated
  behaviour to the recording (DNN applications are rebuilt from the recorded
  increment count of the case-study dynamic-DNN family, preserving which
  applications shared one model; traces recorded from other DNN families are
  rejected at replay via the recorded input size rather than silently
  replayed with the wrong network).

The registered ``trace`` scenario exposes replay to specs and the CLI: a
spec/TOML with ``scenario = "trace"`` and ``scenario_params.path`` replays a
trace file through the standard experiment machinery, and without a path it
round-trips a named source scenario in memory (a permanent regression check
that recording is lossless).

Streaming pipeline
------------------
A million-arrival day does not fit in memory as a list of dicts, so every
file-facing path is generator-based and O(1) in trace length:

* :meth:`ArrivalTrace.iter_records` / :meth:`ArrivalTrace.stream_load` read
  one validated record at a time (the latter also exposes the parsed
  :class:`TraceHeader`);
* :class:`TraceWriter` appends records as they are produced, committing the
  file atomically (same-directory temp + fsync + ``os.replace`` + directory
  fsync) on close;
* :meth:`ArrivalTrace.stream_scenario` replays a file into a scenario
  without materialising the intermediate record lists (the
  :class:`~repro.workloads.scenarios.Scenario` itself still holds one
  :class:`~repro.workloads.tasks.Application` per arrival — the simulator
  needs them — so replay memory is O(arrivals), while recording and
  :func:`compute_trace_stats` stay O(1));
* compression is chosen by file suffix: ``.gz`` (stdlib gzip, deterministic
  ``mtime=0`` members) and ``.zst``/``.zstd`` (optional ``zstandard``
  package; a clear :class:`TraceFormatError` is raised when it is missing).

Every record is validated at read time (required keys, numeric types), so a
malformed file surfaces as a :class:`TraceFormatError` with the offending
record named instead of a ``KeyError`` deep inside a consumer.
"""

from __future__ import annotations

import gzip
import json
import math
from array import array
from dataclasses import dataclass, field
from itertools import chain
from pathlib import Path
from typing import IO, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.dnn.training import IncrementalTrainer, TrainedDynamicDNN
from repro.dnn.zoo import make_dynamic_cifar_dnn
from repro.ioutils import atomic_binary_writer
from repro.platforms.core import CoreType
from repro.workloads.requirements import Requirements
from repro.workloads.scenarios import (
    Scenario,
    ScenarioEvent,
    ScenarioEventKind,
    build_scenario,
    register_scenario,
)
from repro.workloads.tasks import (
    Application,
    DNNApplication,
    GenericApplication,
    ResourceDemand,
    TaskKind,
)

__all__ = [
    "ArrivalTrace",
    "TraceFormatError",
    "TraceHeader",
    "TraceStream",
    "TraceWriter",
    "TraceStats",
    "compute_trace_stats",
    "scenario_from_records",
]

#: Header discriminator of the JSONL format.
TRACE_FORMAT = "repro-arrival-trace"
#: Format version written by this module (readers reject newer versions).
TRACE_VERSION = 1

_REQUIREMENT_FIELDS = (
    "max_latency_ms",
    "max_energy_mj",
    "max_power_mw",
    "min_accuracy_percent",
    "target_fps",
    "priority",
)


class TraceFormatError(ValueError):
    """An arrival-trace file that cannot be parsed or reconstituted."""


def _requirements_to_dict(requirements: Requirements) -> Dict[str, object]:
    payload: Dict[str, object] = {}
    for name in _REQUIREMENT_FIELDS:
        value = getattr(requirements, name)
        if value is not None:
            payload[name] = value
    return payload


def _requirements_from_dict(payload: Dict[str, object]) -> Requirements:
    unknown = sorted(set(payload) - set(_REQUIREMENT_FIELDS))
    if unknown:
        raise TraceFormatError(f"unknown requirement fields {unknown}")
    return Requirements(**payload)  # type: ignore[arg-type]


# ------------------------------------------------------------- file plumbing


def _open_trace_text(path: Path) -> IO[str]:
    """Open a trace for reading, decompressing by suffix (.gz/.zst)."""
    suffix = path.suffix.lower()
    if suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    if suffix in (".zst", ".zstd"):
        try:
            import zstandard
        except ImportError:
            raise TraceFormatError(
                f"cannot read trace file {path}: .zst traces need the optional "
                "'zstandard' package, which is not installed"
            ) from None
        return zstandard.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def _iter_trace_lines(path: Path) -> Iterator[str]:
    """Yield the non-blank lines of a (possibly compressed) trace file.

    Decompression and decoding errors anywhere in the stream — including a
    truncated gzip member, whose EOFError only fires mid-iteration — are
    reported as :class:`TraceFormatError`.
    """
    try:
        with _open_trace_text(path) as stream:
            for line in stream:
                if line.strip():
                    yield line
    except UnicodeDecodeError as error:
        raise TraceFormatError(f"cannot read trace file {path}: {error}") from None
    except EOFError as error:
        raise TraceFormatError(f"truncated compressed trace file {path}: {error}") from None
    except OSError as error:
        raise TraceFormatError(f"cannot read trace file {path}: {error}") from None


# ---------------------------------------------------------- record validation


def _require_number(
    payload: Dict[str, object],
    key: str,
    context: str,
    *,
    optional: bool = False,
    allow_none: bool = False,
) -> Optional[float]:
    """Validate (and return) a numeric field of a record."""
    if key not in payload:
        if optional:
            return None
        raise TraceFormatError(f"{context} is missing required key {key!r}")
    value = payload[key]
    if value is None and allow_none:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TraceFormatError(f"{context} has non-numeric {key}={value!r}")
    if not math.isfinite(value):
        raise TraceFormatError(f"{context} has non-finite {key}={value!r}")
    return float(value)


def _validate_application_record(record: Dict[str, object], location: str) -> None:
    """Shape-check one application record (required keys, numeric types)."""
    app_id = record.get("app_id")
    if not isinstance(app_id, str) or not app_id:
        raise TraceFormatError(
            f"application record in {location} needs a non-empty string 'app_id', got {app_id!r}"
        )
    where = f"application record {app_id!r} in {location}"
    kind = record.get("kind")
    if not isinstance(kind, str) or not kind:
        raise TraceFormatError(f"{where} needs a non-empty string 'kind', got {kind!r}")
    _require_number(record, "arrival_ms", where)
    _require_number(record, "departure_ms", where, optional=True, allow_none=True)
    _require_number(record, "memory_footprint_mb", where, optional=True)
    requirements = record.get("requirements")
    if requirements is not None and not isinstance(requirements, dict):
        raise TraceFormatError(f"{where} has a non-table 'requirements': {requirements!r}")


def _validate_event_record(record: Dict[str, object], location: str) -> None:
    """Shape-check one scheduled-event record."""
    where = f"event record {record.get('app_id')!r} in {location}"
    _require_number(record, "time_ms", where)
    kind = record.get("kind")
    if not isinstance(kind, str) or not kind:
        raise TraceFormatError(f"{where} needs a non-empty string 'kind', got {kind!r}")
    if "app_id" not in record or not isinstance(record.get("app_id"), str):
        raise TraceFormatError(f"{where} needs a string 'app_id'")
    requirements = record.get("requirements")
    if requirements is not None and not isinstance(requirements, dict):
        raise TraceFormatError(f"{where} has a non-table 'requirements': {requirements!r}")


# -------------------------------------------------------------------- header


@dataclass(frozen=True)
class TraceHeader:
    """The parsed first line of a trace file."""

    scenario_name: str
    platform_name: str
    duration_ms: float
    version: int


def _parse_header(line: str, path: Path) -> TraceHeader:
    try:
        header = json.loads(line)
    except json.JSONDecodeError as error:
        raise TraceFormatError(f"invalid JSON in {path}: {error}") from None
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise TraceFormatError(f"{path} is not a {TRACE_FORMAT} file (missing/unknown header)")
    if "version" not in header:
        # A headerless version would silently be read as the oldest format;
        # external writers must state which revision they produce.
        raise TraceFormatError(
            f"invalid trace header in {path}: missing required key 'version' "
            f"(this writer produces version {TRACE_VERSION})"
        )
    try:
        version = int(header["version"])  # type: ignore[arg-type]
        duration_ms = float(header["duration_ms"])
    except (KeyError, TypeError, ValueError) as error:
        raise TraceFormatError(f"invalid trace header in {path}: {error!r}") from None
    if version > TRACE_VERSION:
        raise TraceFormatError(
            f"{path} has version {header['version']}; this reader supports "
            f"up to {TRACE_VERSION}"
        )
    return TraceHeader(
        scenario_name=str(header.get("scenario", path.stem)),
        platform_name=str(header.get("platform", "odroid_xu3")),
        duration_ms=duration_ms,
        version=version,
    )


class TraceStream:
    """A trace header plus a one-shot iterator over its validated records.

    Iterating yields ``(record_type, record)`` pairs where ``record_type`` is
    ``"application"`` or ``"event"`` — one record at a time, so memory stays
    O(1) in trace length.  Obtain one via :meth:`ArrivalTrace.stream_load`.
    """

    def __init__(self, header: TraceHeader, records: Iterator[Tuple[str, Dict[str, object]]]):
        self.header = header
        self._records = records

    def __iter__(self) -> Iterator[Tuple[str, Dict[str, object]]]:
        return self._records


def _iter_body_records(
    lines: Iterator[str], path: Path
) -> Iterator[Tuple[str, Dict[str, object]]]:
    for line in lines:
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise TraceFormatError(f"invalid JSON in {path}: {error}") from None
        if not isinstance(record, dict):
            raise TraceFormatError(f"non-table record line {record!r} in {path}")
        kind = record.pop("record", None)
        if kind == "application":
            _validate_application_record(record, str(path))
        elif kind == "event":
            _validate_event_record(record, str(path))
        else:
            raise TraceFormatError(f"unknown record type {kind!r} in {path}")
        yield kind, record


# -------------------------------------------------------------------- writer


class TraceWriter:
    """Incrementally write an arrival trace: header first, records appended.

    A context manager.  Records are written (and validated) one at a time, so
    recording a million-arrival day needs O(1) memory — unlike
    :meth:`ArrivalTrace.save`, nothing is accumulated.  The output file only
    appears on clean exit, via the shared atomic/durable sequence
    (:func:`repro.ioutils.atomic_binary_writer`: same-directory temp, fsync,
    ``os.replace``, directory fsync); an exception mid-write leaves any
    existing file untouched.  Compression follows the file suffix: ``.gz``
    writes a deterministic (``mtime=0``) gzip member, ``.zst``/``.zstd``
    needs the optional ``zstandard`` package.

    Duplicate ``app_id`` detection is deliberately *not* performed here — it
    would cost O(arrivals) memory; readers enforce it where the scenario is
    materialised (:meth:`ArrivalTrace.load` / replay).
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        scenario_name: str,
        platform_name: str,
        duration_ms: float,
    ) -> None:
        self.path = Path(path)
        self.scenario_name = scenario_name
        self.platform_name = platform_name
        self.duration_ms = float(duration_ms)
        self.applications_written = 0
        self.events_written = 0
        self._ctx = None
        self._raw: Optional[IO[bytes]] = None
        self._sink: Optional[IO[bytes]] = None

    # -- context management

    def __enter__(self) -> "TraceWriter":
        self._ctx = atomic_binary_writer(self.path)
        self._raw = self._ctx.__enter__()
        suffix = self.path.suffix.lower()
        if suffix == ".gz":
            # mtime=0 and an empty embedded name keep equal traces byte-equal.
            self._sink = gzip.GzipFile(
                filename="", mode="wb", fileobj=self._raw, mtime=0
            )
        elif suffix in (".zst", ".zstd"):
            try:
                import zstandard
            except ImportError:
                self._abort()
                raise TraceFormatError(
                    f"cannot write trace file {self.path}: .zst traces need the "
                    "optional 'zstandard' package, which is not installed"
                ) from None
            self._sink = zstandard.ZstdCompressor().stream_writer(self._raw, closefd=False)
        else:
            self._sink = self._raw
        self._write_line(
            {
                "format": TRACE_FORMAT,
                "version": TRACE_VERSION,
                "scenario": self.scenario_name,
                "platform": self.platform_name,
                "duration_ms": self.duration_ms,
            }
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._ctx is not None
        if exc_type is None:
            if self._sink is not self._raw:
                self._sink.close()  # finalise the compression member
            self._ctx.__exit__(None, None, None)
        else:
            self._abort(exc_type, exc, tb)

    def _abort(self, exc_type=BaseException, exc=None, tb=None) -> None:
        if self._ctx is not None:
            try:
                if self._sink is not None and self._sink is not self._raw:
                    self._sink.close()
            except (OSError, ValueError):
                pass
            self._ctx.__exit__(exc_type, exc or BaseException(), tb)
            self._ctx = None

    # -- record appends

    def _write_line(self, payload: Dict[str, object]) -> None:
        assert self._sink is not None, "TraceWriter must be entered before writing"
        self._sink.write((json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"))

    def write_application(self, record: Dict[str, object]) -> None:
        """Append one application record (validated before it hits the file)."""
        _validate_application_record(record, str(self.path))
        self._write_line({"record": "application", **record})
        self.applications_written += 1

    def write_event(self, record: Dict[str, object]) -> None:
        """Append one scheduled-event record."""
        _validate_event_record(record, str(self.path))
        self._write_line({"record": "event", **record})
        self.events_written += 1


# ------------------------------------------------------------- arrival trace


@dataclass
class ArrivalTrace:
    """A recorded workload timeline, serialisable to/from JSONL.

    Attributes
    ----------
    scenario_name / platform_name / duration_ms:
        Identity of the recorded scenario (the platform is a default for
        replay; :meth:`to_scenario` can re-target).
    applications:
        One plain-dict record per application: id, kind, arrival/departure,
        requirements and kind-specific payload (dynamic-DNN shape and input
        size for inference applications, resource demand for generic ones).
    events:
        One plain-dict record per scheduled extra event (requirement
        switches, scripted arrivals/departures).

    This in-memory form is convenient for bounded traces; million-arrival
    files should use the streaming surface instead (:meth:`stream_load`,
    :meth:`iter_records`, :meth:`stream_scenario`, :class:`TraceWriter`).
    """

    scenario_name: str
    platform_name: str
    duration_ms: float
    applications: List[Dict[str, object]] = field(default_factory=list)
    events: List[Dict[str, object]] = field(default_factory=list)

    # -------------------------------------------------------------- recording

    @classmethod
    def from_scenario(cls, scenario: Scenario) -> "ArrivalTrace":
        """Record the workload timeline of a scenario.

        DNN applications record the increment count and input size of their
        dynamic DNN plus a ``model_ref``: applications that share one trained
        model instance (and therefore co-scale — switching one switches the
        other) share a ref, so replay preserves the sharing structure.
        """
        trace = cls(
            scenario_name=scenario.name,
            platform_name=scenario.platform_name,
            duration_ms=scenario.duration_ms,
        )
        model_refs: Dict[int, int] = {}
        for application in scenario.applications:
            record: Dict[str, object] = {
                "app_id": application.app_id,
                "kind": application.kind.value,
                "arrival_ms": application.arrival_time_ms,
                "departure_ms": application.departure_time_ms,
                "memory_footprint_mb": application.memory_footprint_mb,
                "requirements": _requirements_to_dict(application.requirements),
            }
            if isinstance(application, DNNApplication):
                ref = model_refs.setdefault(id(application.trained), len(model_refs))
                record["model_ref"] = ref
                record["num_increments"] = application.dynamic_dnn.num_increments
                record["input_size"] = list(application.dynamic_dnn.base_model.input_shape)
                record["preprocessing_cores"] = application.preprocessing_cores
            elif isinstance(application, GenericApplication):
                record["demand"] = {
                    "core_type": application.demand.core_type.value,
                    "cores": application.demand.cores,
                    "utilisation": application.demand.utilisation,
                    "min_frequency_mhz": application.demand.min_frequency_mhz,
                }
            trace.applications.append(record)
        for event in scenario.extra_events:
            trace.events.append(
                {
                    "time_ms": event.time_ms,
                    "kind": event.kind.value,
                    "app_id": event.app_id,
                    "requirements": (
                        None
                        if event.new_requirements is None
                        else _requirements_to_dict(event.new_requirements)
                    ),
                }
            )
        return trace

    # --------------------------------------------------------------- file I/O

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as JSONL: header, application records, events.

        Streams through :class:`TraceWriter`, so the write is atomic and
        durable (same-directory temp + fsync + rename + directory fsync): a
        crash mid-save leaves any existing file untouched instead of a
        truncated JSONL that :meth:`load` then rejects as corrupt.
        Compression follows the suffix (``.gz``/``.zst``).
        """
        with TraceWriter(
            path,
            scenario_name=self.scenario_name,
            platform_name=self.platform_name,
            duration_ms=self.duration_ms,
        ) as writer:
            for record in self.applications:
                writer.write_application(record)
            for record in self.events:
                writer.write_event(record)

    @classmethod
    def read_header(cls, path: Union[str, Path]) -> TraceHeader:
        """Parse and validate only the header line of a trace file."""
        path = Path(path)
        for line in _iter_trace_lines(path):
            return _parse_header(line, path)
        raise TraceFormatError(f"trace file {path} is empty")

    @classmethod
    def stream_load(cls, path: Union[str, Path]) -> TraceStream:
        """Open a trace for streaming: validated header + record iterator.

        The returned :class:`TraceStream` yields one validated
        ``(record_type, record)`` pair at a time — O(1) memory however long
        the trace is.  The stream is one-shot; call again for a second pass.
        """
        path = Path(path)
        lines = _iter_trace_lines(path)
        header: Optional[TraceHeader] = None
        for line in lines:
            header = _parse_header(line, path)
            break
        if header is None:
            raise TraceFormatError(f"trace file {path} is empty")
        return TraceStream(header, _iter_body_records(lines, path))

    @classmethod
    def iter_records(cls, path: Union[str, Path]) -> Iterator[Tuple[str, Dict[str, object]]]:
        """Stream the validated records of a trace file (header skipped)."""
        return iter(cls.stream_load(path))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ArrivalTrace":
        """Read a whole trace written by :meth:`save` (or a compatible tool).

        Materialises the record lists in memory; use the streaming surface
        for traces too large for that.  Records are validated as they are
        read, and duplicate application ids are rejected here (the simulator
        would silently mis-run a scenario whose ids collide).
        """
        path = Path(path)
        stream = cls.stream_load(path)
        header = stream.header
        trace = cls(
            scenario_name=header.scenario_name,
            platform_name=header.platform_name,
            duration_ms=header.duration_ms,
        )
        seen_ids: set = set()
        for record_type, record in stream:
            if record_type == "application":
                app_id = record["app_id"]
                if app_id in seen_ids:
                    raise TraceFormatError(
                        f"duplicate app_id {app_id!r} across application records in {path}"
                    )
                seen_ids.add(app_id)
                trace.applications.append(record)
            else:
                trace.events.append(record)
        return trace

    # ----------------------------------------------------------------- replay

    def to_scenario(
        self,
        platform_name: Optional[str] = None,
        name: Optional[str] = None,
    ) -> Scenario:
        """Reconstitute a runnable scenario from the recorded timeline.

        DNN applications are rebuilt from the case-study dynamic-DNN family
        at the recorded increment count; records sharing a ``model_ref``
        share one trained instance, exactly like the recording.  The platform
        defaults to the recorded one.
        """
        records = chain(
            (("application", record) for record in self.applications),
            (("event", record) for record in self.events),
        )
        return scenario_from_records(
            records,
            source_name=self.scenario_name,
            platform_name=platform_name or self.platform_name,
            duration_ms=self.duration_ms,
            name=name,
        )

    @classmethod
    def stream_scenario(
        cls,
        path: Union[str, Path],
        platform_name: Optional[str] = None,
        name: Optional[str] = None,
    ) -> Scenario:
        """Replay a trace file into a scenario, consuming the record stream.

        Equivalent to ``load(path).to_scenario(...)`` but never materialises
        the intermediate record dict lists: each record becomes its
        :class:`~repro.workloads.tasks.Application` as it is read.
        """
        stream = cls.stream_load(path)
        header = stream.header
        return scenario_from_records(
            iter(stream),
            source_name=header.scenario_name,
            platform_name=platform_name or header.platform_name,
            duration_ms=header.duration_ms,
            name=name,
        )

    @staticmethod
    def _application_from(
        record: Dict[str, object],
        trained_by_ref: Dict[object, TrainedDynamicDNN],
        index: int,
    ) -> Application:
        kind = TaskKind(record["kind"])
        requirements = _requirements_from_dict(dict(record.get("requirements") or {}))
        departure = record.get("departure_ms")
        common = {
            "app_id": str(record["app_id"]),
            "kind": kind,
            "requirements": requirements,
            "arrival_time_ms": float(record["arrival_ms"]),  # type: ignore[arg-type]
            "departure_time_ms": None if departure is None else float(departure),  # type: ignore[arg-type]
            "memory_footprint_mb": float(record["memory_footprint_mb"]),  # type: ignore[arg-type]
        }
        if kind is TaskKind.DNN_INFERENCE:
            # model_ref encodes which applications deliberately co-scale one
            # model; an external trace that omits it must get an independent
            # model per record, not be silently fused onto a shared one.
            raw_ref = record.get("model_ref")
            ref: object = ("auto", index) if raw_ref is None else int(raw_ref)  # type: ignore[arg-type]
            num_increments = int(record.get("num_increments", 4))  # type: ignore[arg-type]
            trained = trained_by_ref.get(ref)
            if trained is None:
                trained = IncrementalTrainer().train(make_dynamic_cifar_dnn(num_increments))
                trained_by_ref[ref] = trained
            elif trained.dynamic_dnn.num_increments != num_increments:
                raise TraceFormatError(
                    f"model_ref {ref} recorded with conflicting increment counts"
                )
            # Replay reconstitutes the case-study dynamic-DNN family; a trace
            # recorded from a different model must fail loudly rather than
            # silently replay the wrong network.
            recorded_input = record.get("input_size")
            rebuilt_input = list(trained.dynamic_dnn.base_model.input_shape)
            if recorded_input is not None and list(recorded_input) != rebuilt_input:
                raise TraceFormatError(
                    f"recorded input size {recorded_input} is not the case-study "
                    f"family's {rebuilt_input}; this DNN cannot be reconstituted"
                )
            return DNNApplication(
                trained=trained,
                preprocessing_cores=int(record.get("preprocessing_cores", 1)),  # type: ignore[arg-type]
                **common,  # type: ignore[arg-type]
            )
        demand_payload = dict(record.get("demand") or {})
        min_frequency = demand_payload.get("min_frequency_mhz")
        demand = ResourceDemand(
            core_type=CoreType(demand_payload["core_type"]),
            cores=int(demand_payload.get("cores", 1)),  # type: ignore[arg-type]
            utilisation=float(demand_payload.get("utilisation", 0.8)),  # type: ignore[arg-type]
            min_frequency_mhz=None if min_frequency is None else float(min_frequency),  # type: ignore[arg-type]
        )
        return GenericApplication(demand=demand, **common)  # type: ignore[arg-type]


# ----------------------------------------------------- stream -> scenario


def scenario_from_records(
    records: Iterable[Tuple[str, Dict[str, object]]],
    *,
    source_name: str,
    platform_name: str,
    duration_ms: float,
    name: Optional[str] = None,
    description: Optional[str] = None,
) -> Scenario:
    """Build a runnable scenario from a ``(record_type, record)`` stream.

    The shared replay core behind :meth:`ArrivalTrace.to_scenario`,
    :meth:`ArrivalTrace.stream_scenario` and the diurnal traffic generator:
    applications are materialised one record at a time, duplicate ids are
    rejected by name, and malformed records surface as
    :class:`TraceFormatError` instead of raw ``KeyError`` tracebacks.
    """
    trained_by_ref: Dict[object, TrainedDynamicDNN] = {}
    applications: List[Application] = []
    events: List[ScenarioEvent] = []
    seen_ids: set = set()
    index = 0
    for record_type, record in records:
        if record_type == "application":
            app_id = record.get("app_id")
            if app_id in seen_ids:
                raise TraceFormatError(
                    f"duplicate app_id {app_id!r} across application records of "
                    f"{source_name!r}; the simulator cannot tell the two apart"
                )
            seen_ids.add(app_id)
            try:
                applications.append(
                    ArrivalTrace._application_from(record, trained_by_ref, index)
                )
            except (KeyError, TypeError, ValueError) as error:
                if isinstance(error, TraceFormatError):
                    raise
                raise TraceFormatError(
                    f"invalid application record {record.get('app_id')!r}: {error}"
                ) from None
            index += 1
        elif record_type == "event":
            try:
                payload = record.get("requirements")
                events.append(
                    ScenarioEvent(
                        time_ms=float(record["time_ms"]),  # type: ignore[arg-type]
                        kind=ScenarioEventKind(record["kind"]),
                        app_id=str(record["app_id"]),
                        new_requirements=(
                            None if payload is None else _requirements_from_dict(payload)
                        ),
                    )
                )
            except (KeyError, TypeError, ValueError) as error:
                if isinstance(error, TraceFormatError):
                    raise
                raise TraceFormatError(f"invalid event record {record!r}: {error}") from None
        else:
            raise TraceFormatError(f"unknown record type {record_type!r}")
    return Scenario(
        name=name or f"trace({source_name})",
        platform_name=platform_name,
        applications=applications,
        duration_ms=duration_ms,
        extra_events=events,
        description=description
        or f"Replay of the recorded arrival trace of {source_name!r}.",
    )


# ------------------------------------------------------------- corpus stats


@dataclass(frozen=True)
class TraceStats:
    """Streaming summary of one trace file (no simulation involved)."""

    scenario_name: str
    platform_name: str
    duration_ms: float
    version: int
    num_applications: int
    num_events: int
    num_departures: int
    by_kind: Dict[str, int]
    first_arrival_ms: Optional[float] = None
    last_arrival_ms: Optional[float] = None
    gap_min_ms: Optional[float] = None
    gap_p50_ms: Optional[float] = None
    gap_p90_ms: Optional[float] = None
    gap_p99_ms: Optional[float] = None
    gap_max_ms: Optional[float] = None


def _percentile(sorted_values, fraction: float) -> float:
    """Linear-interpolated percentile of an ascending sequence."""
    if len(sorted_values) == 0:
        return 0.0
    position = fraction * (len(sorted_values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    weight = position - lower
    return float(sorted_values[lower]) * (1.0 - weight) + float(sorted_values[upper]) * weight


def compute_trace_stats(path: Union[str, Path]) -> TraceStats:
    """Summarise a trace in one streaming pass.

    Memory is O(arrivals × 8 bytes) — a compact ``array('d')`` of arrival
    times for the exact inter-arrival percentiles — rather than the O(file)
    cost of materialising every record dict: a million-arrival trace peaks
    around tens of megabytes instead of gigabytes.  Everything else (kind
    histogram, departures, counts) is O(1).
    """
    import numpy as np

    stream = ArrivalTrace.stream_load(path)
    header = stream.header
    by_kind: Dict[str, int] = {}
    departures = 0
    events = 0
    arrivals = array("d")
    for record_type, record in stream:
        if record_type == "event":
            events += 1
            continue
        kind = str(record.get("kind", "?"))
        by_kind[kind] = by_kind.get(kind, 0) + 1
        if record.get("departure_ms") is not None:
            departures += 1
        arrivals.append(float(record["arrival_ms"]))  # type: ignore[arg-type]
    stats = {
        "scenario_name": header.scenario_name,
        "platform_name": header.platform_name,
        "duration_ms": header.duration_ms,
        "version": header.version,
        "num_applications": len(arrivals),
        "num_events": events,
        "num_departures": departures,
        "by_kind": by_kind,
    }
    if not arrivals:
        return TraceStats(**stats)  # type: ignore[arg-type]
    times = np.frombuffer(arrivals, dtype=np.float64).copy()
    times.sort()
    stats["first_arrival_ms"] = float(times[0])
    stats["last_arrival_ms"] = float(times[-1])
    if len(times) > 1:
        gaps = np.diff(times)
        gaps.sort()
        stats.update(
            gap_min_ms=float(gaps[0]),
            gap_p50_ms=_percentile(gaps, 0.5),
            gap_p90_ms=_percentile(gaps, 0.9),
            gap_p99_ms=_percentile(gaps, 0.99),
            gap_max_ms=float(gaps[-1]),
        )
    return TraceStats(**stats)  # type: ignore[arg-type]


# ----------------------------------------------------------------- registry


@register_scenario("trace", seeded=False, params=("path", "source", "source_seed", "replatform"))
def trace_scenario(
    seed: int = 0,
    platform_name: str = "odroid_xu3",
    path: Optional[str] = None,
    source: str = "rush_hour",
    source_seed: int = 0,
    replatform: bool = False,
) -> Scenario:
    """Replay an arrival trace: a JSONL file (path), else a round-trip of `source`.

    With ``scenario_params.path`` the named JSONL file is loaded and
    replayed — through the streaming reader, so the file is never
    materialised as record lists.  A spec cannot express "the platform the
    trace was recorded on" (its ``platform`` field always has a value), so a
    platform that differs from the recorded one is rejected unless
    ``scenario_params.replatform`` is true — otherwise a trace recorded on
    another board would silently replay on the spec's default platform as a
    different experiment.  Without a path, the ``source`` registry scenario
    (at ``source_seed``) is recorded to an in-memory trace and replayed —
    simulated behaviour must be bit-identical to running the source
    directly, which the golden-fingerprint table locks in.
    """
    if path is not None:
        header = ArrivalTrace.read_header(path)
        if not replatform and header.platform_name != platform_name:
            raise TraceFormatError(
                f"trace {path} was recorded on {header.platform_name!r} but the "
                f"spec requests {platform_name!r}; set platform = "
                f"{header.platform_name!r} or scenario_params.replatform = true "
                "to re-target deliberately"
            )
        return ArrivalTrace.stream_scenario(path, platform_name=platform_name)
    recorded = ArrivalTrace.from_scenario(
        build_scenario(source, seed=source_seed, platform_name=platform_name)
    )
    return recorded.to_scenario(platform_name=platform_name)
