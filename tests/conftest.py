"""Shared fixtures for the test suite.

Heavy objects (the trained dynamic DNN, platform presets, the calibrated
energy model) are session-scoped: they are immutable from the tests' point of
view or cheap to guard, and rebuilding them per test would dominate the suite
runtime.  Fixtures that tests mutate (SoCs whose frequencies/reservations are
changed) are function-scoped.
"""

from __future__ import annotations

import pytest

from repro.data.cifar import make_validation_set
from repro.dnn.training import IncrementalTrainer, TrainedDynamicDNN
from repro.dnn.zoo import cifar_group_cnn, make_dynamic_cifar_dnn
from repro.perfmodel.calibrated import CalibratedLatencyModel
from repro.perfmodel.energy import EnergyModel
from repro.platforms.presets import jetson_nano, odroid_xu3


@pytest.fixture(scope="session")
def reference_network():
    """The paper's group-convolution CIFAR-10 network (read-only)."""
    return cifar_group_cnn()


@pytest.fixture(scope="session")
def trained_dnn() -> TrainedDynamicDNN:
    """A trained four-increment dynamic DNN shared across tests.

    Tests must not mutate its active configuration without restoring it;
    tests that need to switch configurations should build their own dynamic
    DNN via ``make_dynamic_cifar_dnn``.
    """
    return IncrementalTrainer().train(make_dynamic_cifar_dnn())


@pytest.fixture(scope="session")
def energy_model() -> EnergyModel:
    """Calibrated energy model (stateless)."""
    return EnergyModel(CalibratedLatencyModel())


@pytest.fixture(scope="session")
def validation_set():
    """Synthetic CIFAR-10 validation set."""
    return make_validation_set()


@pytest.fixture
def xu3():
    """A fresh Odroid XU3 platform model (tests may mutate it)."""
    return odroid_xu3()


@pytest.fixture
def nano():
    """A fresh Jetson Nano platform model (tests may mutate it)."""
    return jetson_nano()


@pytest.fixture
def fresh_dynamic_dnn():
    """A fresh dynamic DNN whose configuration tests may freely switch."""
    return make_dynamic_cifar_dnn()


@pytest.fixture(scope="session")
def registry_grid_cached():
    """Traces of every registry scenario x manager at seed 0 (cache enabled).

    Session-scoped because two test modules consume the same 48 simulations:
    the golden-trace regression locks their fingerprints, and the parity
    sweep compares them against cache-off / multi-worker reruns.
    """
    from repro.analysis import ParallelSweepRunner
    from repro.analysis.parallel import MANAGER_REGISTRY
    from repro.workloads.scenarios import SCENARIO_REGISTRY

    runner = ParallelSweepRunner(workers=1)
    result = runner.grid(
        sorted(SCENARIO_REGISTRY), sorted(MANAGER_REGISTRY), seeds=[0], use_op_cache=True
    )
    assert not result.errors, result.errors
    return result
