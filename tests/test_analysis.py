"""Tests for the analysis subpackage (timelines, reports, sweeps)."""

import pytest

from repro.analysis.report import (
    OPERATING_POINT_HEADERS,
    format_markdown_table,
    format_operating_points,
    format_table,
    format_trace_comparison,
    operating_point_rows,
    trace_comparison_rows,
)
from repro.analysis.parallel import ParallelSweepRunner
from repro.analysis.timeline import (
    adaptation_events,
    application_timeline,
    phase_boundaries_from_scenario,
)
from repro.baselines import GovernorOnlyManager
from repro.rtm import RuntimeManager
from repro.rtm.operating_points import OperatingPoint
from repro.sim.trace import JobRecord, SimulationTrace
from repro.workloads import WorkloadGeneratorConfig, fig2_scenario, single_dnn_scenario


def _job(app_id, release, cluster, configuration, dropped=False, violations=()):
    return JobRecord(
        app_id=app_id,
        job_index=0,
        release_ms=release,
        start_ms=release,
        finish_ms=release + 10.0,
        latency_ms=10.0,
        energy_mj=5.0,
        configuration=configuration,
        accuracy_percent=71.2,
        cluster=cluster,
        cores=1,
        frequency_mhz=1000.0,
        violations=violations,
        dropped=dropped,
    )


class TestTimeline:
    def test_phase_boundaries_from_scenario(self, trained_dnn):
        scenario = fig2_scenario(trained_factory=lambda: trained_dnn)
        boundaries = phase_boundaries_from_scenario(scenario)
        assert boundaries[0] == 0.0
        assert boundaries[-1] == scenario.duration_ms
        assert 5000.0 in boundaries and 15000.0 in boundaries and 25000.0 in boundaries

    def test_application_timeline_windows(self):
        trace = SimulationTrace(duration_ms=4000.0)
        trace.record_job(_job("a", 500.0, "a15", 1.0))
        trace.record_job(_job("a", 1500.0, "a7", 0.5))
        trace.record_job(_job("a", 2500.0, "a7", 0.5, dropped=True))
        phases = application_timeline(trace, "a", boundaries=[0.0, 1000.0, 2000.0, 4000.0])
        assert len(phases) == 3
        assert phases[0].clusters == ("a15",)
        assert phases[1].clusters == ("a7",)
        assert phases[1].mean_configuration == pytest.approx(0.5)
        assert phases[2].dropped == 1
        assert phases[2].violation_rate == 1.0

    def test_application_timeline_default_quarters(self):
        trace = SimulationTrace(duration_ms=4000.0)
        trace.record_job(_job("a", 100.0, "a15", 1.0))
        phases = application_timeline(trace, "a")
        assert len(phases) == 4

    def test_application_timeline_requires_two_boundaries(self):
        trace = SimulationTrace(duration_ms=1000.0)
        with pytest.raises(ValueError):
            application_timeline(trace, "a", boundaries=[0.0])

    def test_adaptation_events_detect_cluster_and_width_changes(self):
        trace = SimulationTrace(duration_ms=3000.0)
        trace.record_job(_job("a", 0.0, "mali_gpu", 1.0))
        trace.record_job(_job("a", 1000.0, "a7", 1.0))
        trace.record_job(_job("a", 2000.0, "a7", 0.5))
        events = adaptation_events(trace, "a")
        kinds = [event.kind for event in events]
        assert kinds == ["cluster", "configuration"]
        assert "mali_gpu -> a7" in str(events[0])

    def test_adaptation_events_all_apps_sorted(self):
        trace = SimulationTrace(duration_ms=3000.0)
        trace.record_job(_job("b", 0.0, "a15", 1.0))
        trace.record_job(_job("b", 2000.0, "a7", 1.0))
        trace.record_job(_job("a", 0.0, "a15", 1.0))
        trace.record_job(_job("a", 1000.0, "a7", 1.0))
        events = adaptation_events(trace)
        assert [event.app_id for event in events] == ["a", "b"]
        assert events[0].time_ms <= events[1].time_ms


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.2345], ["long-name", 2.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert "1.23" in text

    def test_format_markdown_table(self):
        text = format_markdown_table(["a", "b"], [[1, 2]])
        assert text.splitlines()[0] == "| a | b |"
        assert "|---|---|" in text

    def test_operating_point_rows_and_format(self):
        point = OperatingPoint(
            cluster_name="a7",
            frequency_mhz=900.0,
            cores=1,
            configuration=1.0,
            latency_ms=401.0,
            power_mw=193.0,
            energy_mj=77.4,
            accuracy_percent=71.2,
            confidence_percent=73.0,
        )
        rows = operating_point_rows([point])
        assert rows[0][0] == "a7"
        assert rows[0][1] == 100
        text = format_operating_points([point])
        assert "a7" in text and str(OPERATING_POINT_HEADERS[0]) in text
        markdown = format_operating_points([point], markdown=True)
        assert markdown.startswith("| cluster")

    def test_format_operating_points_limit(self):
        point = OperatingPoint("a7", 900.0, 1, 1.0, 400.0, 200.0, 80.0, 71.2, 73.0)
        text = format_operating_points([point, point, point], limit=1)
        assert text.count("a7") == 1

    def test_trace_comparison(self):
        trace = SimulationTrace(duration_ms=1000.0)
        trace.record_job(_job("a", 0.0, "a15", 1.0))
        rows = trace_comparison_rows({"rtm": trace})
        assert rows[0][0] == "rtm"
        text = format_trace_comparison({"rtm": trace})
        assert "violation rate" in text
        markdown = format_trace_comparison({"rtm": trace}, markdown=True)
        assert markdown.startswith("| manager")


class TestSweeps:
    def test_manager_sweep_replays_scenario_per_manager(self, trained_dnn):
        factory = lambda: single_dnn_scenario(duration_ms=2000.0)  # noqa: E731
        sweep = ParallelSweepRunner().manager_sweep(
            factory,
            {"rtm": RuntimeManager, "governor": GovernorOnlyManager},
        )
        assert set(sweep.traces) == {"rtm", "governor"}
        assert set(sweep.violation_rates()) == {"rtm", "governor"}
        assert sweep.best_case() in {"rtm", "governor"}
        assert all(energy >= 0 for energy in sweep.energies_mj().values())
        assert all(0 <= acc <= 100 for acc in sweep.mean_accuracies().values())

    def test_empty_sweep_best_case_raises(self):
        from repro.analysis.sweep import SweepResult

        with pytest.raises(ValueError):
            SweepResult().best_case()

    def test_seed_sweep_aggregates(self, trained_dnn):
        config = WorkloadGeneratorConfig(
            num_dnn_apps=1, num_background_apps=0, duration_ms=2000.0
        )
        result = ParallelSweepRunner().seed_sweep(
            RuntimeManager,
            seeds=[1, 2],
            generator_config=config,
        )
        assert result["seeds"] == [1, 2]
        assert set(result["violation_rates"]) == {1, 2}
        assert 0.0 <= result["mean_violation_rate"] <= 1.0
        assert result["worst_violation_rate"] >= result["mean_violation_rate"] - 1e-9

    def test_seed_sweep_requires_seeds(self):
        with pytest.raises(ValueError):
            ParallelSweepRunner().seed_sweep(RuntimeManager, seeds=[])
