"""Tests for the static-pruning and governor-only baselines."""

import pytest

from repro.baselines.governor_only import GovernorOnlyManager
from repro.baselines.static import StaticDeploymentManager, design_time_deployment
from repro.dnn.zoo import cifar_group_cnn
from repro.rtm.state import AppRuntimeState, MapApplication, SetConfiguration, SystemState
from repro.workloads.requirements import Requirements
from repro.workloads.tasks import make_dnn_application


def make_state(soc, apps):
    return SystemState(
        time_ms=0.0,
        soc=soc,
        apps={state.app_id: state for state in apps},
    )


class TestDesignTimeDeployment:
    def test_variant_per_cluster(self, xu3):
        plan = design_time_deployment(
            cifar_group_cnn(), xu3, Requirements(max_latency_ms=200.0), clusters=["a15", "a7"]
        )
        assert len(plan.variants) == 2
        assert {v.cluster_name for v in plan.variants} == {"a15", "a7"}

    def test_slower_cluster_gets_smaller_model(self, xu3):
        plan = design_time_deployment(
            cifar_group_cnn(), xu3, Requirements(max_latency_ms=100.0), clusters=["a15", "a7"]
        )
        a15 = plan.variant_for("odroid_xu3", "a15")
        a7 = plan.variant_for("odroid_xu3", "a7")
        # The A7 needs more compression to hit the same latency target, and
        # therefore loses more accuracy (the Yang et al. trade-off).
        assert a7.keep_fraction <= a15.keep_fraction
        assert a7.accuracy_percent <= a15.accuracy_percent

    def test_variants_meet_the_latency_budget_when_feasible(self, xu3):
        requirements = Requirements(max_latency_ms=150.0)
        plan = design_time_deployment(
            cifar_group_cnn(), xu3, requirements, clusters=["a15", "a7", "mali_gpu"]
        )
        for variant in plan.variants:
            assert variant.predicted_latency_ms <= 150.0 + 1e-6

    def test_total_storage_exceeds_single_model(self, xu3):
        # Covering several hardware settings with static variants costs more
        # DRAM than the single dynamic model (the paper's storage argument).
        plan = design_time_deployment(
            cifar_group_cnn(), xu3, Requirements(max_latency_ms=500.0), clusters=["a15", "a7", "mali_gpu"]
        )
        single_model_mb = cifar_group_cnn().model_size_mb()
        assert plan.total_storage_mb > single_model_mb

    def test_unknown_variant_lookup_raises(self, xu3):
        plan = design_time_deployment(
            cifar_group_cnn(), xu3, Requirements(max_latency_ms=200.0), clusters=["a15"]
        )
        with pytest.raises(KeyError):
            plan.variant_for("odroid_xu3", "npu")


class TestStaticDeploymentManager:
    def test_deploys_each_app_once(self, trained_dnn, xu3):
        manager = StaticDeploymentManager()
        app = make_dnn_application("dnn1", trained_dnn, Requirements(target_fps=5.0))
        state = make_state(xu3, [AppRuntimeState(application=app)])
        first = manager.decide(state)
        assert any(isinstance(a, MapApplication) for a in first.actions)
        assert any(isinstance(a, SetConfiguration) for a in first.actions)
        # Once mapped, later decisions leave the application alone.
        mapped_state = make_state(xu3, [AppRuntimeState(application=app)])
        mapped_state.apps["dnn1"].mapping = None  # unmapped -> will redeploy
        second = manager.decide(mapped_state)
        assert any(isinstance(a, MapApplication) for a in second.actions)
        # The design-time choice is stable across calls.
        clusters = {
            a.cluster_name for a in first.actions + second.actions if isinstance(a, MapApplication)
        }
        assert len(manager._choices) == 1
        assert len(clusters) >= 1

    def test_choice_respects_accuracy_floor(self, trained_dnn, xu3):
        manager = StaticDeploymentManager()
        app = make_dnn_application(
            "dnn1",
            trained_dnn,
            Requirements(target_fps=5.0, min_accuracy_percent=70.0),
        )
        state = make_state(xu3, [AppRuntimeState(application=app)])
        manager.decide(state)
        choice = manager._choices["dnn1"]
        assert trained_dnn.top1(choice.configuration) >= 70.0

    def test_infeasible_requirements_fall_back_to_smallest_model(self, trained_dnn, xu3):
        manager = StaticDeploymentManager()
        app = make_dnn_application(
            "dnn1", trained_dnn, Requirements(max_latency_ms=0.1, target_fps=1000.0)
        )
        state = make_state(xu3, [AppRuntimeState(application=app)])
        manager.decide(state)
        choice = manager._choices["dnn1"]
        assert choice.configuration == min(trained_dnn.configurations)

    def test_mapped_app_receives_no_actions(self, trained_dnn, xu3):
        from repro.rtm.state import Mapping

        manager = StaticDeploymentManager()
        app = make_dnn_application("dnn1", trained_dnn, Requirements(target_fps=5.0))
        app_state = AppRuntimeState(application=app, mapping=Mapping("mali_gpu", 1))
        decision = manager.decide(make_state(xu3, [app_state]))
        assert not decision.actions


class TestGovernorOnlyManager:
    def test_places_on_fastest_free_cluster_with_full_model(self, trained_dnn, xu3):
        manager = GovernorOnlyManager()
        app = make_dnn_application("dnn1", trained_dnn, Requirements(target_fps=30.0))
        decision = manager.decide(make_state(xu3, [AppRuntimeState(application=app)]))
        mappings = [a for a in decision.actions if isinstance(a, MapApplication)]
        configurations = [a for a in decision.actions if isinstance(a, SetConfiguration)]
        assert len(mappings) == 1
        # The Mali GPU has the highest single-core peak throughput on the XU3.
        assert mappings[0].cluster_name == "mali_gpu"
        assert configurations[0].configuration == 1.0

    def test_never_rescal_es_the_dnn(self, trained_dnn, xu3):
        manager = GovernorOnlyManager()
        app = make_dnn_application(
            "dnn1", trained_dnn, Requirements(target_fps=30.0, max_energy_mj=1.0)
        )
        decision = manager.decide(make_state(xu3, [AppRuntimeState(application=app)]))
        for action in decision.actions:
            if isinstance(action, SetConfiguration):
                assert action.configuration == 1.0

    def test_replaces_preempted_app(self, trained_dnn, xu3):
        manager = GovernorOnlyManager()
        app = make_dnn_application("dnn1", trained_dnn, Requirements(target_fps=10.0))
        # First placement.
        manager.decide(make_state(xu3, [AppRuntimeState(application=app)]))
        # The app lost its mapping (e.g. AR/VR preempted the GPU); the OS
        # reschedules it somewhere else.
        xu3.cluster("mali_gpu").reserve_cores(1, "arvr")
        decision = manager.decide(make_state(xu3, [AppRuntimeState(application=app)]))
        mappings = [a for a in decision.actions if isinstance(a, MapApplication)]
        assert mappings and mappings[0].cluster_name != "mali_gpu"

    def test_governor_adjusts_frequencies_from_utilisation(self, trained_dnn, xu3):
        from repro.rtm.state import SetFrequency

        manager = GovernorOnlyManager()
        xu3.cluster("a15").set_frequency(1800.0)
        state = make_state(xu3, [])
        state.cluster_utilisations = {"a15": 0.05, "a7": 0.05, "mali_gpu": 0.05}
        decision = manager.decide(state)
        targets = {a.cluster_name: a.frequency_mhz for a in decision.actions if isinstance(a, SetFrequency)}
        assert targets.get("a15", 1800.0) < 1800.0

    def test_invalid_fixed_configuration(self):
        with pytest.raises(ValueError):
            GovernorOnlyManager(fixed_configuration=0.0)
