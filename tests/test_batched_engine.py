"""Batched lock-step engine: bit-identity against the serial reference.

The batched backend's whole contract is that sharing decision machinery
across replicas is an *optimisation*, never a behaviour change: every
replica's trace fingerprint must equal its serial twin's, and neither the
number of replicas in the batch nor their order may leak into any result.
"""

import pytest

from repro.experiments import (
    EXECUTION_BACKEND_REGISTRY,
    ExperimentSpec,
    grid_specs,
    make_execution_backend,
    run_many,
)
from repro.workloads import SCENARIO_REGISTRY

#: Every registered manager the sweeps exercise.
MANAGERS = ["rtm", "rtm_min_energy", "governor_only", "static_deployment"]

#: Short generated scenarios keep the property tests inside the test budget.
SHORT = {"duration_ms": 2000.0}


def _fingerprints(batch):
    return {label: trace.fingerprint() for label, trace in batch.traces.items()}


def _short_specs():
    return [
        ExperimentSpec(scenario="steady", manager=manager, seed=seed, scenario_params=SHORT)
        for manager in ("rtm", "governor_only")
        for seed in (0, 1)
    ]


class TestBackendRegistry:
    def test_all_backends_registered(self):
        assert {"serial", "process", "batched"} <= set(EXECUTION_BACKEND_REGISTRY)

    def test_unknown_backend_raises_with_available_names(self):
        with pytest.raises(ValueError, match="serial"):
            make_execution_backend("threaded")

    def test_single_process_backends_reject_worker_pools(self):
        specs = [ExperimentSpec(scenario="steady", manager="rtm", scenario_params=SHORT)]
        for name in ("serial", "batched"):
            with pytest.raises(ValueError, match="single-process"):
                run_many(specs, backend=name, workers=2)

    def test_run_many_rejects_unknown_backend(self):
        specs = [ExperimentSpec(scenario="steady", manager="rtm", scenario_params=SHORT)]
        with pytest.raises(ValueError, match="batched"):
            run_many(specs, backend="thredded")


class TestBatchedSerialParity:
    @pytest.mark.integration
    def test_every_scenario_under_every_manager_seed0(self):
        # The acceptance grid: all registered scenarios x all managers at
        # seed 0, bit-identical fingerprints between the two backends.
        specs = grid_specs(sorted(SCENARIO_REGISTRY), MANAGERS, seeds=[0])
        serial = run_many(specs, backend="serial")
        batched = run_many(specs, backend="batched")
        assert not serial.errors and not batched.errors
        assert _fingerprints(serial) == _fingerprints(batched)

    def test_fuzzed_scenarios_sample(self):
        specs = [
            ExperimentSpec(scenario="fuzzed", manager=manager, seed=seed)
            for manager in ("rtm", "static_deployment")
            for seed in (0, 3)
        ]
        serial = run_many(specs, backend="serial")
        batched = run_many(specs, backend="batched")
        assert not serial.errors and not batched.errors
        assert _fingerprints(serial) == _fingerprints(batched)


class TestBatchCompositionInvariance:
    def test_replica_order_never_changes_fingerprints(self):
        specs = _short_specs()
        forward = run_many(specs, backend="batched")
        backward = run_many(list(reversed(specs)), backend="batched")
        assert not forward.errors and not backward.errors
        assert _fingerprints(forward) == _fingerprints(backward)
        # Results themselves come back in submission order.
        assert list(backward.traces) == [spec.label for spec in reversed(specs)]

    def test_replica_count_never_changes_fingerprints(self):
        specs = _short_specs()
        base = run_many(specs, backend="batched")
        extra = specs + [
            ExperimentSpec(
                scenario="bursty", manager="rtm", seed=7, scenario_params=SHORT
            )
        ]
        enlarged = run_many(extra, backend="batched")
        assert not base.errors and not enlarged.errors
        base_fingerprints = _fingerprints(base)
        enlarged_fingerprints = _fingerprints(enlarged)
        for label, fingerprint in base_fingerprints.items():
            assert enlarged_fingerprints[label] == fingerprint

    def test_seed_insensitive_replicas_share_one_trace(self):
        # fig2 ignores the seed, so the engine deduplicates the replicas;
        # every label must still come back, all with the same fingerprint.
        specs = [ExperimentSpec(scenario="fig2", manager="rtm", seed=seed) for seed in (0, 1)]
        batch = run_many(specs, backend="batched")
        assert not batch.errors
        fingerprints = _fingerprints(batch)
        assert len(fingerprints) == 2
        assert len(set(fingerprints.values())) == 1


class TestBatchedErrorIsolation:
    def test_one_failing_spec_does_not_abort_the_batch(self):
        good = ExperimentSpec(
            scenario="steady", manager="rtm", seed=0, scenario_params=SHORT
        )
        bad = ExperimentSpec(
            name="bad", scenario="steady", manager="rtm", seed=1,
            scenario_params={"not_a_param": 1},
        )
        batch = run_many([good, bad], backend="batched", validate=False)
        assert good.label in batch.traces
        assert "bad" in batch.errors
