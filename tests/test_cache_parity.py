"""Cached-vs-uncached and serial-vs-parallel parity of the sweep engine.

The operating-point cache is a pure memoisation layer: for every registry
scenario under every registered manager, the cached and uncached simulations
must produce bit-for-bit identical traces (same fingerprints, same
aggregates).  The uncached grid is executed through the
``ParallelSweepRunner`` with two workers, so one pass also re-checks that
worker fan-out does not perturb results; a smaller triangulation run pins
serial-uncached against both.
"""

from __future__ import annotations

import pytest

from repro.analysis import ParallelSweepRunner
from repro.analysis.parallel import MANAGER_REGISTRY
from repro.workloads.scenarios import SCENARIO_REGISTRY

SCENARIOS = sorted(SCENARIO_REGISTRY)
MANAGERS = sorted(MANAGER_REGISTRY)


@pytest.fixture(scope="module")
def registry_grid_uncached_parallel():
    """Every scenario x manager at seed 0, cache off, two worker processes."""
    result = ParallelSweepRunner(workers=2).grid(
        SCENARIOS, MANAGERS, seeds=[0], use_op_cache=False
    )
    assert not result.errors, result.errors
    return result


class TestCachedUncachedParity:
    def test_traces_are_bit_for_bit_identical(
        self, registry_grid_cached, registry_grid_uncached_parallel
    ):
        cached = registry_grid_cached.traces
        uncached = registry_grid_uncached_parallel.traces
        assert list(cached) == list(uncached)
        mismatches = [
            name
            for name in cached
            if cached[name].fingerprint() != uncached[name].fingerprint()
        ]
        assert not mismatches, f"cache changed behaviour for: {mismatches}"

    def test_aggregates_are_identical(
        self, registry_grid_cached, registry_grid_uncached_parallel
    ):
        assert (
            registry_grid_cached.violation_rates()
            == registry_grid_uncached_parallel.violation_rates()
        )
        assert (
            registry_grid_cached.energies_mj()
            == registry_grid_uncached_parallel.energies_mj()
        )
        assert (
            registry_grid_cached.mean_accuracies()
            == registry_grid_uncached_parallel.mean_accuracies()
        )

    def test_cached_runs_actually_used_the_cache(self, registry_grid_cached):
        # The RTM-family managers enumerate operating points every epoch, so
        # any non-trivial scenario must show cache hits; the baselines never
        # enumerate and must report zero lookups.
        rtm_counters = registry_grid_cached.traces["rush_hour/rtm/seed0"].cache_counters()
        assert rtm_counters["hits"] > rtm_counters["misses"] > 0
        baseline = registry_grid_cached.traces["rush_hour/governor_only/seed0"]
        assert baseline.cache_counters() == {"hits": 0, "misses": 0}

    def test_uncached_runs_report_zero_counters(self, registry_grid_uncached_parallel):
        counters = registry_grid_uncached_parallel.traces[
            "rush_hour/rtm/seed0"
        ].cache_counters()
        assert counters == {"hits": 0, "misses": 0}


class TestWorkerCountParity:
    def test_serial_uncached_matches_both_grids(
        self, registry_grid_cached, registry_grid_uncached_parallel
    ):
        scenarios = ["steady", "thermal_stress"]
        managers = ["rtm", "static_deployment"]
        serial = ParallelSweepRunner(workers=1).grid(
            scenarios, managers, seeds=[0], use_op_cache=False
        )
        assert not serial.errors, serial.errors
        for name, trace in serial.traces.items():
            fingerprint = trace.fingerprint()
            assert fingerprint == registry_grid_uncached_parallel.traces[name].fingerprint()
            assert fingerprint == registry_grid_cached.traces[name].fingerprint()
