"""Tests for the repro-experiments command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["table1"],
            ["fig4a", "--pareto", "--limit", "5"],
            ["fig4b"],
            ["case-study", "--platform", "odroid_xu3"],
            ["scenario", "--name", "single_dnn"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)


class TestCommands:
    def test_table1_prints_every_row(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "odroid_xu3" in output and "jetson_nano" in output
        assert "A7 CPU (200MHz)" in output
        # Ten data rows plus two header lines.
        assert len(output.strip().splitlines()) == 12

    def test_fig4b_prints_four_configurations(self, capsys):
        assert main(["fig4b"]) == 0
        output = capsys.readouterr().out
        for token in ("25%", "50%", "75%", "100%", "71.2"):
            assert token in output

    def test_fig4a_limit_and_pareto(self, capsys):
        assert main(["fig4a", "--limit", "3"]) == 0
        output = capsys.readouterr().out
        assert "116" in output  # total point count is reported
        data_lines = [line for line in output.splitlines() if line.strip().startswith(("a15", "a7"))]
        assert len(data_lines) == 3
        assert main(["fig4a", "--pareto", "--limit", "5"]) == 0
        assert "Pareto" in capsys.readouterr().out

    def test_case_study_default_budgets(self, capsys):
        assert main(["case-study"]) == 0
        output = capsys.readouterr().out
        assert "400 ms" in output and "200 ms" in output
        assert "a7" in output and "a15" in output

    def test_case_study_custom_budget(self, capsys):
        assert main(["case-study", "--latency-ms", "50", "--energy-mj", "300"]) == 0
        output = capsys.readouterr().out
        assert "50 ms" in output

    def test_scenario_single_dnn(self, capsys):
        assert main(["scenario", "--name", "single_dnn", "--events"]) == 0
        output = capsys.readouterr().out
        assert "violation rate" in output
        assert "Timeline of dnn1" in output

    def test_scenario_unknown_name_fails(self, capsys):
        assert main(["scenario", "--name", "not_a_scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
