"""Tests for the repro-experiments command-line interface."""

import re

import pytest

from repro.cli import build_parser, main


class TestSpecCommands:
    """The spec-driven front-ends: ``run`` and ``--dump-spec``."""

    def test_sweep_dump_spec_to_stdout(self, capsys):
        assert (
            main(["sweep", "--scenarios", "steady", "--managers", "rtm", "--dump-spec", "-"])
            == 0
        )
        output = capsys.readouterr().out
        assert 'scenario = "steady"' in output
        assert 'manager = "rtm"' in output

    def test_sweep_dump_spec_then_run_replays(self, capsys, tmp_path):
        path = tmp_path / "sweep.toml"
        assert (
            main(
                ["sweep", "--scenarios", "single_dnn", "--managers", "rtm",
                 "governor_only", "--dump-spec", str(path)]
            )
            == 0
        )
        assert "replay with: repro-experiments run" in capsys.readouterr().out
        assert main(["run", str(path)]) == 0
        output = capsys.readouterr().out
        assert "2 experiments" in output
        assert "single_dnn/rtm/seed0" in output
        assert "single_dnn/governor_only/seed0" in output
        assert "spec id" in output

    def test_scenario_dump_spec_includes_baselines(self, capsys):
        assert (
            main(["scenario", "--name", "single_dnn", "--baselines", "--dump-spec", "-"])
            == 0
        )
        output = capsys.readouterr().out
        assert output.count("[[experiment]]") == 3
        assert 'manager = "governor_only"' in output
        assert 'manager = "static_deployment"' in output

    def test_run_missing_file_fails(self, capsys, tmp_path):
        assert main(["run", str(tmp_path / "nope.toml")]) == 2
        assert "invalid spec" in capsys.readouterr().err

    def test_run_invalid_spec_fails_with_suggestion(self, capsys, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text('scenario = "rush_our"\n')
        assert main(["run", str(path)]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err and "did you mean 'rush_hour'" in err

    def test_run_duplicate_labels_fail(self, capsys, tmp_path):
        path = tmp_path / "dup.toml"
        path.write_text(
            '[[experiment]]\nscenario = "steady"\n\n[[experiment]]\nscenario = "steady"\n'
        )
        assert main(["run", str(path)]) == 2
        assert "duplicate experiment labels" in capsys.readouterr().err

    def test_run_rejects_zero_workers(self, capsys, tmp_path):
        path = tmp_path / "one.toml"
        path.write_text('scenario = "single_dnn"\n')
        assert main(["run", str(path), "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_run_reports_failing_specs_with_exit_1(self, capsys, tmp_path):
        # The platform reference resolves (validate passes names it knows) —
        # make the failure a runtime one via scenario_params the builder
        # rejects, exercising per-case error capture.
        path = tmp_path / "fail.toml"
        path.write_text(
            '[[experiment]]\nname = "bad"\nscenario = "single_dnn"\n'
            "[experiment.scenario_params]\nduration_ms = -1.0\n"
            '\n[[experiment]]\nscenario = "single_dnn"\n'
        )
        assert main(["run", str(path)]) == 1
        captured = capsys.readouterr()
        assert "1 experiment(s) failed" in captured.err
        assert "single_dnn/rtm/seed0" in captured.out


class TestParser:
    def test_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["table1"],
            ["fig4a", "--pareto", "--limit", "5"],
            ["fig4b"],
            ["case-study", "--platform", "odroid_xu3"],
            ["scenario", "--name", "single_dnn"],
            ["scenarios", "list"],
            ["managers", "list"],
            ["platforms", "list"],
            ["run", "spec.toml", "--workers", "2"],
            ["sweep", "--scenarios", "steady", "bursty", "--seeds", "2", "--workers", "4"],
            ["sweep", "--scenario", "steady"],
            ["sweep", "--dump-spec", "-"],
            ["bench", "--smoke", "--no-write"],
            ["bench", "--scenarios", "steady", "--managers", "rtm", "--repeats", "1"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_scenarios_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios"])

    def test_managers_and_platforms_require_a_subcommand(self):
        for command in ("managers", "platforms"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command])


class TestCommands:
    def test_table1_prints_every_row(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "odroid_xu3" in output and "jetson_nano" in output
        assert "A7 CPU (200MHz)" in output
        # Ten data rows plus two header lines.
        assert len(output.strip().splitlines()) == 12

    def test_fig4b_prints_four_configurations(self, capsys):
        assert main(["fig4b"]) == 0
        output = capsys.readouterr().out
        for token in ("25%", "50%", "75%", "100%", "71.2"):
            assert token in output

    def test_fig4a_limit_and_pareto(self, capsys):
        assert main(["fig4a", "--limit", "3"]) == 0
        output = capsys.readouterr().out
        assert "116" in output  # total point count is reported
        data_lines = [line for line in output.splitlines() if line.strip().startswith(("a15", "a7"))]
        assert len(data_lines) == 3
        assert main(["fig4a", "--pareto", "--limit", "5"]) == 0
        assert "Pareto" in capsys.readouterr().out

    def test_case_study_default_budgets(self, capsys):
        assert main(["case-study"]) == 0
        output = capsys.readouterr().out
        assert "400 ms" in output and "200 ms" in output
        assert "a7" in output and "a15" in output

    def test_case_study_custom_budget(self, capsys):
        assert main(["case-study", "--latency-ms", "50", "--energy-mj", "300"]) == 0
        output = capsys.readouterr().out
        assert "50 ms" in output

    def test_scenario_single_dnn(self, capsys):
        assert main(["scenario", "--name", "single_dnn", "--events"]) == 0
        output = capsys.readouterr().out
        assert "violation rate" in output
        assert "Timeline of dnn1" in output

    def test_scenario_unknown_name_fails(self, capsys):
        assert main(["scenario", "--name", "not_a_scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_scenario_unknown_platform_fails_cleanly(self, capsys):
        assert main(["scenario", "--name", "single_dnn", "--platform", "jetson_nanoo"]) == 2
        err = capsys.readouterr().err
        assert "unknown platform preset" in err and "did you mean 'jetson_nano'" in err

    def test_bench_unknown_platform_fails_cleanly(self, capsys):
        assert main(["bench", "--smoke", "--no-write", "--platform", "nope"]) == 2
        assert "unknown platform preset" in capsys.readouterr().err

    def test_case_study_unknown_platform_fails_cleanly(self, capsys):
        assert main(["case-study", "--platform", "jetson_nanoo"]) == 2
        assert "unknown platform preset" in capsys.readouterr().err

    def test_scenarios_list_prints_the_registry(self, capsys):
        assert main(["scenarios", "list"]) == 0
        output = capsys.readouterr().out
        assert "registered scenarios" in output
        for name in (
            "fig2",
            "steady",
            "bursty",
            "rush_hour",
            "battery_saver",
            "mixed_criticality",
            "overload",
        ):
            assert name in output
        # Every line carries a description next to the name.
        body_lines = [line for line in output.splitlines()[1:] if line.strip()]
        assert all(len(line.split(None, 1)) == 2 for line in body_lines)

    def test_managers_list_prints_the_registry(self, capsys):
        assert main(["managers", "list"]) == 0
        output = capsys.readouterr().out
        assert "registered managers" in output
        for name in ("rtm", "rtm_min_energy", "governor_only", "static_deployment"):
            assert name in output

    def test_platforms_list_prints_topology(self, capsys):
        assert main(["platforms", "list"]) == 0
        output = capsys.readouterr().out
        assert "platform presets" in output
        assert "odroid_xu3" in output and "jetson_nano" in output
        # Cluster topology with core counts appears per preset.
        assert "a15:4xcpu_big" in output
        assert "a57:4xcpu_big" in output

    def test_faults_list_prints_accepted_keys_per_kind(self, capsys):
        assert main(["faults", "list"]) == 0
        output = capsys.readouterr().out
        assert "fault event kinds" in output
        # Every [[events]] kind line is followed by its accepted keys, so a
        # plan author never has to read the dataclass source to spell one.
        assert "keys: kind, time_ms, cluster, cores" in output
        assert "keys: kind, time_ms, cluster, max_frequency_mhz" in output
        assert "keys: kind, time_ms, bias_c" in output
        # The job-crash table's keys are listed too.
        assert "probability" in output and "backoff_base_ms" in output
        assert "chaos scenarios" in output

    def test_sweep_unknown_scenario_fails(self, capsys):
        assert main(["sweep", "--scenarios", "not_a_scenario"]) == 2
        assert "unknown scenarios" in capsys.readouterr().err

    def test_sweep_unknown_manager_fails(self, capsys):
        assert main(["sweep", "--managers", "not_a_manager"]) == 2
        assert "unknown managers" in capsys.readouterr().err

    def test_sweep_near_miss_manager_gets_a_suggestion(self, capsys):
        assert main(["sweep", "--managers", "goveror_only"]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'governor_only'" in err

    def test_sweep_rejects_zero_seeds(self, capsys):
        assert main(["sweep", "--seeds", "0"]) == 2
        assert "--seeds" in capsys.readouterr().err

    def test_sweep_runs_seed_insensitive_scenarios_once(self, capsys):
        assert (
            main(
                ["sweep", "--scenarios", "single_dnn", "--managers", "rtm", "--seeds", "3"]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "seed-insensitive" in captured.err
        assert "single_dnn/rtm/seed0" in captured.out
        assert "seed1" not in captured.out and "seed2" not in captured.out

    def test_sweep_seed_base_pins_unseeded_scenarios_to_seed_zero(self, capsys, recwarn):
        # The runner's own seed choice for a deterministic scenario must not
        # trip the ignored-seed warning aimed at caller typos.
        assert (
            main(
                ["sweep", "--scenarios", "single_dnn", "--managers", "rtm",
                 "--seeds", "1", "--seed-base", "3"]
            )
            == 0
        )
        assert "single_dnn/rtm/seed0" in capsys.readouterr().out
        assert not [w for w in recwarn.list if "ignores seed" in str(w.message)]

    def test_sweep_rejects_duplicate_names(self, capsys):
        assert main(["sweep", "--scenarios", "steady", "steady"]) == 2
        assert "duplicate scenario names" in capsys.readouterr().err
        assert main(["sweep", "--managers", "rtm", "rtm"]) == 2
        assert "duplicate manager names" in capsys.readouterr().err

    def test_sweep_rejects_zero_workers(self, capsys):
        assert main(["sweep", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_sweep_unknown_platform_fails_cleanly(self, capsys):
        # Up-front usage error (exit 2), consistent with scenario/bench, so a
        # typo never burns a whole grid or dumps an unreplayable spec file.
        code = main(
            ["sweep", "--scenarios", "steady", "--managers", "rtm", "--seeds", "1",
             "--platform", "not_a_platform"]
        )
        assert code == 2
        assert "unknown platform preset" in capsys.readouterr().err

    def test_sweep_reports_failing_cases_with_exit_1(self, capsys, monkeypatch):
        # Runtime failures (as opposed to name typos) stay captured per case.
        def explode(*args, **kwargs):
            raise RuntimeError("scenario construction exploded")

        monkeypatch.setattr("repro.experiments.runner.build_scenario", explode)
        code = main(["sweep", "--scenarios", "steady", "--managers", "rtm", "--seeds", "1"])
        assert code == 1
        captured = capsys.readouterr()
        assert "1 case(s) failed" in captured.err
        assert "scenario construction exploded" in captured.err

    def test_sweep_prints_cases_and_aggregates(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--scenarios",
                    "single_dnn",
                    "--managers",
                    "rtm",
                    "governor_only",
                    "--seeds",
                    "1",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "1 seeds on odroid_xu3" in output
        assert "single_dnn/rtm/seed0" in output
        assert "single_dnn/governor_only/seed0" in output
        assert "aggregates across seeds:" in output
        assert "violation rate" in output

    def test_sweep_cache_stats_reports_hits(self, capsys):
        assert (
            main(
                ["sweep", "--scenarios", "single_dnn", "--managers", "rtm", "--cache-stats"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "operating-point cache statistics:" in output
        assert "cache hits" in output and "hit rate" in output
        stats_section = output.split("operating-point cache statistics:")[1]
        row = next(
            line for line in stats_section.splitlines() if "single_dnn/rtm/seed0" in line
        )
        hits, misses = (int(v) for v in row.split()[1:3])
        assert hits > 0 and misses > 0

    def test_sweep_no_cache_reports_zero_lookups(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--scenarios",
                    "single_dnn",
                    "--managers",
                    "rtm",
                    "--no-cache",
                    "--cache-stats",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        stats_section = output.split("operating-point cache statistics:")[1]
        row = next(
            line for line in stats_section.splitlines() if "single_dnn/rtm/seed0" in line
        )
        assert row.split()[1:3] == ["0", "0"]


class TestComposeCommand:
    def test_compose_prints_the_overview(self, capsys):
        assert main(["scenarios", "compose", "--op", "mix", "--a", "steady", "--b", "bursty"]) == 0
        output = capsys.readouterr().out
        assert "applications" in output
        assert "dnn_inference" in output

    def test_compose_dump_spec_round_trips(self, capsys, tmp_path):
        path = tmp_path / "composed.toml"
        assert (
            main(
                ["scenarios", "compose", "--op", "splice", "--a", "rush_hour",
                 "--b", "battery_saver", "--at-ms", "15000", "--dump-spec", str(path)]
            )
            == 0
        )
        assert "replay with" in capsys.readouterr().out
        assert main(["run", str(path)]) == 0
        assert "compose_splice" in capsys.readouterr().out

    def test_compose_run_reports_fingerprint(self, capsys):
        assert (
            main(
                ["scenarios", "compose", "--op", "scale", "--a", "steady",
                 "--arrival-factor", "0.5", "--run", "--manager", "governor_only"]
            )
            == 0
        )
        assert "trace fingerprint:" in capsys.readouterr().out

    def test_compose_unknown_operand_fails(self, capsys):
        assert main(["scenarios", "compose", "--a", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_compose_invalid_numeric_operand_fails_cleanly(self, capsys):
        assert (
            main(["scenarios", "compose", "--op", "splice", "--a", "steady",
                  "--b", "bursty", "--at-ms", "-5"])
            == 2
        )
        assert "invalid composition" in capsys.readouterr().err
        assert (
            main(["scenarios", "compose", "--op", "scale", "--a", "steady",
                  "--arrival-factor", "0"])
            == 2
        )
        assert "invalid composition" in capsys.readouterr().err

    def test_compose_rejects_flags_the_op_does_not_use(self, capsys):
        assert (
            main(["scenarios", "compose", "--op", "mix", "--a", "steady",
                  "--b", "bursty", "--at-ms", "5000"])
            == 2
        )
        err = capsys.readouterr().err
        assert "invalid composition" in err and "does not use params" in err

    def test_compose_dump_spec_conflicts_with_execution_outputs(self, capsys, tmp_path):
        assert (
            main(["scenarios", "compose", "--a", "steady", "--dump-spec", "-",
                  "--save-trace", str(tmp_path / "t.jsonl")])
            == 2
        )
        assert "--dump-spec replaces execution" in capsys.readouterr().err
        assert main(["scenarios", "compose", "--a", "steady", "--dump-spec", "-", "--run"]) == 2
        assert "--dump-spec replaces execution" in capsys.readouterr().err

    def test_compose_dump_spec_validates_before_writing(self, capsys, tmp_path):
        # A spec that could only fail at run time must not be emitted.
        path = tmp_path / "bad.toml"
        assert (
            main(["scenarios", "compose", "--op", "splice", "--a", "steady",
                  "--b", "bursty", "--at-ms", "-5", "--dump-spec", str(path)])
            == 2
        )
        assert "invalid composition" in capsys.readouterr().err
        assert not path.exists()


class TestTraceCommands:
    def test_record_then_replay_round_trips(self, capsys, tmp_path):
        path = tmp_path / "bursty.jsonl"
        assert (
            main(["trace", "record", "--scenario", "bursty", "--seed", "2", "--out", str(path)])
            == 0
        )
        recorded = capsys.readouterr().out
        assert "recorded" in recorded and str(path) in recorded
        assert main(["trace", "replay", str(path), "--manager", "governor_only"]) == 0
        output = capsys.readouterr().out
        assert "trace fingerprint:" in output
        assert "violation rate" in output

    def test_replay_dump_spec_carries_the_absolute_path(self, capsys, tmp_path, monkeypatch):
        path = tmp_path / "steady.jsonl"
        assert main(["trace", "record", "--scenario", "steady", "--out", str(path)]) == 0
        capsys.readouterr()
        # Dump from inside the trace's directory using a relative file name:
        # the emitted spec must still pin the absolute path, so it replays
        # from any working directory.
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "replay", "steady.jsonl", "--dump-spec", "-"]) == 0
        output = capsys.readouterr().out
        assert 'scenario = "trace"' in output
        assert str(path.resolve()) in output
        assert "replatform" not in output  # platform matches the recording

    def test_replay_dump_spec_marks_platform_overrides_deliberate(self, capsys, tmp_path):
        path = tmp_path / "steady.jsonl"
        assert main(["trace", "record", "--scenario", "steady", "--out", str(path)]) == 0
        capsys.readouterr()
        assert (
            main(["trace", "replay", str(path), "--platform", "jetson_nano",
                  "--dump-spec", "-"])
            == 0
        )
        output = capsys.readouterr().out
        assert 'platform = "jetson_nano"' in output
        assert "replatform = true" in output

    def test_replay_invalid_file_fails_cleanly(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n", encoding="utf-8")
        assert main(["trace", "replay", str(bad)]) == 2
        assert "invalid trace" in capsys.readouterr().err

    def test_replay_invalid_record_body_fails_cleanly(self, capsys, tmp_path):
        # Valid header and JSON, bad record content: still exit 2, no traceback.
        bad = tmp_path / "bad_body.jsonl"
        bad.write_text(
            '{"format": "repro-arrival-trace", "version": 1, "duration_ms": 1000.0}\n'
            '{"record": "application", "app_id": "x", "kind": "dnn_inference", '
            '"arrival_ms": 0.0, "departure_ms": null, "memory_footprint_mb": 1.0, '
            '"requirements": {"bogus": 1}}\n',
            encoding="utf-8",
        )
        assert main(["trace", "replay", str(bad)]) == 2
        assert "invalid trace" in capsys.readouterr().err

    def test_record_unknown_scenario_fails(self, capsys, tmp_path):
        assert (
            main(["trace", "record", "--scenario", "nope", "--out", str(tmp_path / "x.jsonl")])
            == 2
        )
        assert "unknown scenario" in capsys.readouterr().err

    def test_stats_summarises_a_recorded_trace(self, capsys, tmp_path):
        path = tmp_path / "rush.jsonl"
        assert main(["trace", "record", "--scenario", "rush_hour", "--out", str(path)]) == 0
        capsys.readouterr()
        assert main(["trace", "stats", str(path)]) == 0
        output = capsys.readouterr().out
        assert "rush_hour_seed0 on odroid_xu3" in output
        assert "5 application(s)" in output
        assert "dnn_inference" in output and "background" in output
        assert "inter-arrival ms:" in output and "p99" in output

    def test_stats_invalid_file_fails_cleanly(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n", encoding="utf-8")
        assert main(["trace", "stats", str(bad)]) == 2
        assert "invalid trace" in capsys.readouterr().err

    def test_stats_missing_arrival_key_is_not_a_traceback(self, capsys, tmp_path):
        # Regression: a record without arrival_ms used to escape as a raw
        # KeyError from deep inside the loader.
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            '{"format": "repro-arrival-trace", "version": 1, "duration_ms": 1000.0}\n'
            '{"record": "application", "app_id": "a1", "kind": "background"}\n',
            encoding="utf-8",
        )
        assert main(["trace", "stats", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "invalid trace" in err
        assert "missing required key 'arrival_ms'" in err
        assert "a1" in err

    def test_replay_duplicate_app_id_names_the_id(self, capsys, tmp_path):
        bad = tmp_path / "dup.jsonl"
        record = (
            '{"record": "application", "app_id": "dup", "kind": "background", '
            '"arrival_ms": %s, "departure_ms": null, "memory_footprint_mb": 1.0, '
            '"requirements": {"priority": 0}, '
            '"demand": {"core_type": "cpu_little", "cores": 1, "utilisation": 0.1}}\n'
        )
        bad.write_text(
            '{"format": "repro-arrival-trace", "version": 1, "duration_ms": 1000.0}\n'
            + record % "1.0"
            + record % "2.0",
            encoding="utf-8",
        )
        assert main(["trace", "replay", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "invalid trace" in err and "duplicate app_id 'dup'" in err

    def test_stats_missing_header_version_fails_cleanly(self, capsys, tmp_path):
        bad = tmp_path / "nover.jsonl"
        bad.write_text(
            '{"format": "repro-arrival-trace", "duration_ms": 1000.0}\n',
            encoding="utf-8",
        )
        assert main(["trace", "stats", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "invalid trace" in err and "missing required key 'version'" in err

    def test_generate_then_stats_and_replay(self, capsys, tmp_path):
        path = tmp_path / "diurnal.jsonl.gz"
        assert (
            main(
                ["trace", "generate", "--out", str(path), "--duration-ms", "30000",
                 "--param", "base_rate_per_s=1.0", "--seed", "3"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "generated" in output and str(path) in output
        assert main(["trace", "stats", str(path)]) == 0
        assert "application(s)" in capsys.readouterr().out
        assert main(["trace", "replay", str(path), "--manager", "governor_only"]) == 0
        assert "trace fingerprint:" in capsys.readouterr().out

    def test_generate_arrivals_target_is_a_lower_bound(self, capsys, tmp_path):
        path = tmp_path / "sized.jsonl"
        assert (
            main(
                ["trace", "generate", "--out", str(path), "--arrivals", "300",
                 "--duration-ms", "600000"]
            )
            == 0
        )
        match = re.search(r"generated (\d+) arrival", capsys.readouterr().out)
        assert match and int(match.group(1)) >= 300

    def test_generate_rejects_bad_config(self, capsys, tmp_path):
        assert (
            main(
                ["trace", "generate", "--out", str(tmp_path / "x.jsonl"),
                 "--param", "flash_magnitude=0.1"]
            )
            == 2
        )
        assert "invalid diurnal config" in capsys.readouterr().err

    def test_stats_max_peak_mb_enforced(self, capsys, tmp_path):
        path = tmp_path / "rush.jsonl"
        assert main(["trace", "record", "--scenario", "rush_hour", "--out", str(path)]) == 0
        capsys.readouterr()
        assert main(["trace", "stats", str(path), "--max-peak-mb", "64"]) == 0
        assert "within --max-peak-mb" in capsys.readouterr().out
        assert main(["trace", "stats", str(path), "--max-peak-mb", "0.0001"]) == 1
        assert "exceeds --max-peak-mb" in capsys.readouterr().err

    def test_record_accepts_scenario_params(self, capsys, tmp_path):
        path = tmp_path / "d.jsonl"
        assert (
            main(
                ["trace", "record", "--scenario", "diurnal", "--out", str(path),
                 "--param", "duration_ms=20000", "--param", "base_rate_per_s=1.0"]
            )
            == 0
        )
        assert "recorded" in capsys.readouterr().out

    def test_record_rejects_unknown_scenario_params(self, capsys, tmp_path):
        assert (
            main(
                ["trace", "record", "--scenario", "diurnal",
                 "--out", str(tmp_path / "d.jsonl"), "--param", "bogus_knob=1"]
            )
            == 2
        )
        assert "invalid scenario parameters" in capsys.readouterr().err


class TestBenchCommand:
    def test_bench_unknown_scenario_fails(self, capsys):
        assert main(["bench", "--scenarios", "nope", "--repeats", "1"]) == 2
        assert "unknown scenarios" in capsys.readouterr().err

    def test_bench_unknown_manager_fails(self, capsys):
        assert main(["bench", "--managers", "nope", "--repeats", "1"]) == 2
        assert "unknown managers" in capsys.readouterr().err

    def test_bench_runs_and_writes_json(self, capsys, tmp_path):
        from repro.analysis import load_bench_file

        output_path = tmp_path / "bench.json"
        assert (
            main(
                [
                    "bench",
                    "--scenarios",
                    "steady",
                    "--managers",
                    "rtm",
                    "--repeats",
                    "1",
                    "--output",
                    str(output_path),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "steady/rtm" in output
        assert "decide ms (uncached)" in output
        document = load_bench_file(str(output_path))
        results = document["results"]["steady/rtm"]
        assert results["decide_ms_per_epoch_uncached"] > 0
        assert results["e2e_s"] > 0

    def test_bench_compare_gate_passes_against_self(self, capsys, tmp_path):
        output_path = tmp_path / "bench.json"
        assert (
            main(
                [
                    "bench",
                    "--scenarios",
                    "steady",
                    "--managers",
                    "rtm",
                    "--repeats",
                    "1",
                    "--output",
                    str(output_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        # A generous tolerance against the just-written file must pass.
        assert (
            main(
                [
                    "bench",
                    "--scenarios",
                    "steady",
                    "--managers",
                    "rtm",
                    "--repeats",
                    "1",
                    "--no-write",
                    "--compare",
                    str(output_path),
                    "--max-regression",
                    "5.0",
                ]
            )
            == 0
        )
        assert "no regressions" in capsys.readouterr().out

    def test_bench_compare_fails_on_regression(self, capsys, tmp_path):
        import json

        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "results": {
                        "steady/rtm": {
                            "decide_ms_per_epoch_cached": 1e-9,
                            "decide_ms_per_epoch_uncached": 1e-9,
                        }
                    }
                }
            )
        )
        assert (
            main(
                [
                    "bench",
                    "--scenarios",
                    "steady",
                    "--managers",
                    "rtm",
                    "--repeats",
                    "1",
                    "--no-write",
                    "--compare",
                    str(baseline),
                ]
            )
            == 1
        )
        assert "regression" in capsys.readouterr().err

    def test_bench_dump_spec_exports_the_grid(self, capsys, tmp_path):
        from repro.experiments import load_specs

        path = tmp_path / "bench.toml"
        assert (
            main(
                ["bench", "--scenarios", "steady", "rush_hour", "--managers", "rtm",
                 "--dump-spec", str(path)]
            )
            == 0
        )
        assert "replay with" in capsys.readouterr().out
        specs = load_specs(path)
        assert [spec.label for spec in specs] == ["steady/rtm/seed0", "rush_hour/rtm/seed0"]

    def test_bench_compare_missing_baseline_fails(self, capsys, tmp_path):
        assert (
            main(
                [
                    "bench",
                    "--scenarios",
                    "steady",
                    "--managers",
                    "rtm",
                    "--repeats",
                    "1",
                    "--no-write",
                    "--compare",
                    str(tmp_path / "missing.json"),
                ]
            )
            == 2
        )
        assert "cannot load baseline" in capsys.readouterr().err


class TestStoreCommands:
    """The results-store surface: --store/--resume plus the ``store`` verbs."""

    def _sweep(self, db, extra=()):
        return main(
            ["sweep", "--scenarios", "steady", "--managers", "rtm", "--store", str(db), *extra]
        )

    def test_resume_without_store_fails(self, capsys):
        assert main(["sweep", "--scenarios", "steady", "--managers", "rtm", "--resume"]) == 2
        assert "--resume needs --store" in capsys.readouterr().err

    def test_sweep_store_then_resume_skips_everything(self, capsys, tmp_path):
        db = tmp_path / "results.db"
        assert self._sweep(db) == 0
        first = capsys.readouterr().out
        assert "store: 1 result(s) streamed" in first
        assert self._sweep(db, ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "resume: 1 skipped (already stored), 0 computed" in second

        def digest(output: str) -> str:
            for line in output.splitlines():
                if line.startswith("combined fingerprint digest"):
                    return line.split(":")[1].strip()
            raise AssertionError(f"no digest line in {output!r}")

        assert digest(first) == digest(second)

    def test_store_ls_show_and_diff(self, capsys, tmp_path):
        db = tmp_path / "results.db"
        assert self._sweep(db) == 0
        capsys.readouterr()

        assert main(["store", "ls", str(db)]) == 0
        listing = capsys.readouterr().out
        assert "steady/rtm/seed0" in listing and "1 result(s)" in listing
        spec_id = listing.splitlines()[2].split()[0]

        assert main(["store", "show", str(db), spec_id]) == 0
        shown = capsys.readouterr().out
        assert f"spec id:     {spec_id}" in shown
        assert 'scenario = "steady"' in shown and "violation_rate" in shown

        assert main(["store", "diff", str(db), spec_id]) == 0
        assert "fingerprints match" in capsys.readouterr().out

    def test_store_diff_detects_drift(self, capsys, tmp_path):
        import sqlite3

        db = tmp_path / "results.db"
        assert self._sweep(db) == 0
        connection = sqlite3.connect(db)
        connection.execute("UPDATE results SET fingerprint = 'deadbeefdeadbeef'")
        connection.commit()
        spec_id = connection.execute("SELECT spec_id FROM results").fetchone()[0]
        connection.close()
        capsys.readouterr()
        assert main(["store", "diff", str(db), spec_id]) == 1
        assert "fingerprint mismatch" in capsys.readouterr().err

    def test_store_show_unknown_spec_id_fails(self, capsys, tmp_path):
        db = tmp_path / "results.db"
        assert self._sweep(db) == 0
        capsys.readouterr()
        assert main(["store", "show", str(db), "0" * 16]) == 1
        assert "no result for spec id" in capsys.readouterr().err

    def test_store_verbs_refuse_missing_files(self, capsys, tmp_path):
        missing = str(tmp_path / "absent.db")
        assert main(["store", "ls", missing]) == 2
        assert "no results store" in capsys.readouterr().err
        # Read verbs must not create an empty store as a side effect.
        assert not (tmp_path / "absent.db").exists()

    def test_store_export_toml_replays_through_run(self, capsys, tmp_path):
        db = tmp_path / "results.db"
        assert self._sweep(db) == 0
        out = tmp_path / "replay.toml"
        assert main(["store", "export", str(db), "--format", "toml", "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["run", str(out), "--store", str(db), "--resume"]) == 0
        replay = capsys.readouterr().out
        assert "resume: 1 skipped (already stored), 0 computed" in replay

    def test_store_gc_prunes_to_keep_latest(self, capsys, tmp_path):
        db = tmp_path / "results.db"
        assert (
            main(
                ["sweep", "--scenarios", "steady", "--managers", "rtm", "governor_only",
                 "--store", str(db)]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["store", "gc", str(db), "--keep-latest", "1"]) == 0
        assert "deleted 1 result(s), kept 1" in capsys.readouterr().out

    def test_run_store_reports_digest(self, capsys, tmp_path):
        spec = tmp_path / "spec.toml"
        spec.write_text('scenario = "steady"\n')
        db = tmp_path / "results.db"
        assert main(["run", str(spec), "--store", str(db)]) == 0
        out = capsys.readouterr().out
        assert "store: 1 result(s) streamed" in out
        assert "combined fingerprint digest over this batch:" in out

    def test_bench_smoke_appends_to_store(self, capsys, tmp_path):
        db = tmp_path / "bench.db"
        args = ["bench", "--smoke", "--no-write", "--store", str(db)]
        assert main(args) == 0
        assert "appended" not in capsys.readouterr().out  # no JSON file, no document
        assert main([*args, "--resume"]) == 0
        assert "resume: 1 of 1 case(s) already timed" in capsys.readouterr().out

    def test_bench_batched_rejects_resume(self, capsys, tmp_path):
        assert (
            main(
                ["bench", "--backend", "batched", "--smoke", "--no-write",
                 "--store", str(tmp_path / "b.db"), "--resume"]
            )
            == 2
        )
        assert "single timed pass" in capsys.readouterr().err
