"""Parity tests for the columnar operating-point kernel.

The vectorised table path (struct-of-arrays pricing, Pareto pre-filtering,
requirement scoring and policy selection) must be bit-identical to the
per-point scalar path it replaced.  These tests pin that equivalence at
every layer — pricing, violation scoring, Pareto masks and policy choices —
plus the bench harness that tracks the kernel's performance trajectory.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.bench import (
    BenchTimings,
    compare_bench,
    load_bench_file,
    run_bench_case,
    write_bench_file,
)
from repro.perfmodel.roofline import RooflineLatencyModel
from repro.rtm.cache import (
    DECISION_MAXIMISE,
    DECISION_OBJECTIVES,
    OperatingPointCache,
    soc_topology_key,
)
from repro.rtm.operating_points import (
    OperatingPointSpace,
    OperatingPointTable,
    pareto_front,
    pareto_mask,
)
from repro.rtm.policies import POLICY_REGISTRY, _violation_score
from repro.workloads.requirements import Requirements


@pytest.fixture(scope="module")
def space(trained_dnn, energy_model):
    # Module-scoped read-only platform: the function-scoped xu3 fixture is
    # for tests that mutate the SoC; these only price against it.
    from repro.platforms.presets import odroid_xu3

    return OperatingPointSpace(trained_dnn, odroid_xu3(), energy_model)


@pytest.fixture(scope="module")
def table(space):
    return space.enumerate_table(temperature_c=45.0)


@pytest.fixture(scope="module")
def points(space):
    return space.enumerate(temperature_c=45.0)


REQUIREMENT_SETS = [
    Requirements(),
    Requirements(max_latency_ms=400.0, max_energy_mj=100.0),
    Requirements(target_fps=10.0, min_accuracy_percent=60.0),
    Requirements(max_latency_ms=5.0),  # infeasible: exercises degradation
    Requirements(max_power_mw=1.0, max_latency_ms=1.0),  # doubly infeasible
    Requirements(
        max_latency_ms=300.0,
        max_energy_mj=150.0,
        max_power_mw=2500.0,
        min_accuracy_percent=55.0,
        target_fps=4.0,
    ),
]


class TestTablePricingParity:
    def test_columns_match_scalar_points_bitwise(self, table, points):
        assert len(table) == len(points)
        for row, point in enumerate(points):
            assert table.latency_ms[row] == point.latency_ms
            assert table.power_mw[row] == point.power_mw
            assert table.energy_mj[row] == point.energy_mj
            assert table.accuracy_percent[row] == point.accuracy_percent
            assert table.confidence_percent[row] == point.confidence_percent
            assert table.fps[row] == point.fps
            assert table.frequency_mhz[row] == point.frequency_mhz
            assert int(table.cores[row]) == point.cores
            assert table.configuration[row] == point.configuration
            assert table.cluster_names[int(table.cluster_index[row])] == point.cluster_name

    def test_materialised_points_equal_scalar_points(self, table, points):
        assert table.points == points

    def test_restricted_table_matches_restricted_enumeration(self, space):
        kwargs = dict(
            clusters=["a15"],
            configurations=[1.0, 0.5],
            core_counts=[1, 3],
            frequencies={"a15": [600.0, 1800.0]},
            temperature_c=45.0,
        )
        assert space.enumerate_table(**kwargs).points == space.enumerate(**kwargs)

    def test_roofline_fallback_matches_scalar(self, trained_dnn, nano, energy_model):
        # The nano GPU cluster is calibrated but a custom cluster name is not,
        # so enumerate over the nano exercises both calibrated and roofline
        # paths depending on the calibration table.
        space = OperatingPointSpace(trained_dnn, nano, energy_model)
        assert space.enumerate_table(temperature_c=50.0).points == space.enumerate(
            temperature_c=50.0
        )

    def test_scalar_fallback_for_gridless_estimators(self, trained_dnn, xu3):
        from repro.perfmodel.energy import EnergyModel

        class GridlessLatency:
            """Estimator without latency_grid_ms: forces the per-point path."""

            def __init__(self):
                self._inner = RooflineLatencyModel()

            def latency_ms(self, network, cluster, frequency_mhz=None, cores_used=1, **kwargs):
                return self._inner.latency_ms(network, cluster, frequency_mhz, cores_used)

        gridless = EnergyModel(GridlessLatency())
        reference = EnergyModel(RooflineLatencyModel())
        fallback = OperatingPointSpace(trained_dnn, xu3, gridless)
        vectorised = OperatingPointSpace(trained_dnn, xu3, reference)
        assert fallback.enumerate(temperature_c=45.0) == vectorised.enumerate(
            temperature_c=45.0
        )

    def test_block_pricing_counts_each_point_once(self, trained_dnn, xu3, energy_model):
        fresh = OperatingPointSpace(trained_dnn, xu3, energy_model)
        full = fresh.enumerate_table(temperature_c=45.0)
        assert fresh.points_priced == len(full)
        fresh.enumerate(temperature_c=45.0)  # same grid, object form
        assert fresh.points_priced == len(full)


class TestTableViews:
    def test_take_preserves_requested_order(self, table):
        indices = np.array([5, 2, 9])
        view = table.take(indices)
        assert len(view) == 3
        assert view.points == [table.point(5), table.point(2), table.point(9)]

    def test_take_accepts_boolean_masks(self, table, points):
        mask = table.cores == 1
        view = table.take(mask)
        expected = [p for p in points if p.cores == 1]
        assert len(view) == int(mask.sum())
        assert view.points == expected

    def test_concat_round_trip(self, space):
        a15 = space.enumerate_table(clusters=["a15"], temperature_c=45.0)
        a7 = space.enumerate_table(clusters=["a7"], temperature_c=45.0)
        union = OperatingPointTable.concat([a15, a7])
        assert len(union) == len(a15) + len(a7)
        assert union.points == a15.points + a7.points

    def test_empty_table(self):
        empty = OperatingPointTable.empty()
        assert len(empty) == 0
        assert empty.points == []

    def test_columns_are_read_only(self, table):
        with pytest.raises(ValueError):
            table.latency_ms[0] = 0.0

    def test_unknown_column_rejected(self, table):
        with pytest.raises(KeyError):
            table.column("nope")


class TestParetoParity:
    def test_table_pareto_matches_point_pareto(self, table, points):
        front = table.pareto(objectives=DECISION_OBJECTIVES, maximise=DECISION_MAXIMISE)
        expected = pareto_front(
            points, objectives=DECISION_OBJECTIVES, maximise=DECISION_MAXIMISE
        )
        assert front.points == expected

    def test_table_pareto_matches_default_objectives(self, table, points):
        assert table.pareto().points == pareto_front(points)

    def test_hierarchical_front_equals_direct_mask(self, table):
        # The grouped fast path (n >= 64, several configurations) must equal
        # the direct O(n^2) mask over the full matrix.
        matrix = table.objective_matrix(DECISION_OBJECTIVES, DECISION_MAXIMISE)
        direct = np.flatnonzero(~pareto_mask(matrix))
        grouped = table.pareto(objectives=DECISION_OBJECTIVES, maximise=DECISION_MAXIMISE)
        assert grouped.points == [table.point(i) for i in direct]

    def test_mask_handles_duplicates_and_ties(self):
        matrix = np.array(
            [
                [1.0, 1.0],
                [1.0, 1.0],  # duplicate: neither dominates the other
                [2.0, 0.5],  # incomparable with row 0
                [2.0, 2.0],  # dominated by rows 0 and 1
            ]
        )
        assert pareto_mask(matrix).tolist() == [False, False, False, True]

    def test_mask_empty_and_singleton(self):
        assert pareto_mask(np.empty((0, 3))).tolist() == []
        assert pareto_mask(np.array([[1.0, 2.0]])).tolist() == [False]


class TestPolicySelectionParity:
    @pytest.mark.parametrize("policy_name", sorted(POLICY_REGISTRY))
    @pytest.mark.parametrize("requirements", REQUIREMENT_SETS)
    @pytest.mark.parametrize("power_cap_mw", [None, 3000.0, 0.5])
    def test_select_table_matches_select(
        self, table, points, policy_name, requirements, power_cap_mw
    ):
        policy = POLICY_REGISTRY[policy_name]()
        scalar = policy.select(points, requirements, power_cap_mw=power_cap_mw)
        columnar = policy.select_table(table, requirements, power_cap_mw=power_cap_mw)
        assert columnar == scalar

    def test_empty_candidates_select_none(self, table):
        policy = POLICY_REGISTRY["max_accuracy"]()
        assert policy.select([], Requirements()) is None
        assert policy.select_table(OperatingPointTable.empty(), Requirements()) is None

    def test_custom_select_override_falls_back_to_point_path(self, table, points):
        from repro.rtm.policies import MinEnergyUnderConstraints

        class AlwaysLast(MinEnergyUnderConstraints):
            def select(self, candidates, requirements, power_cap_mw=None):
                candidates = list(candidates)
                return candidates[-1] if candidates else None

        policy = AlwaysLast()
        requirements = Requirements()
        assert policy.select_table(table, requirements) == points[-1]

    @pytest.mark.parametrize("policy_name", sorted(POLICY_REGISTRY))
    def test_custom_feasible_points_override_is_honoured(self, table, points, policy_name):
        base = POLICY_REGISTRY[policy_name]

        class OnlyA7(base):
            """Custom feasibility filter: the vectorised path must not bypass it."""

            def feasible_points(self, candidates, requirements, power_cap_mw=None):
                feasible = super().feasible_points(candidates, requirements, power_cap_mw)
                return [p for p in feasible if p.cluster_name == "a7"]

        policy = OnlyA7()
        requirements = Requirements(max_latency_ms=400.0, max_energy_mj=100.0)
        scalar = policy.select(points, requirements)
        columnar = policy.select_table(table, requirements)
        assert columnar == scalar
        assert columnar.cluster_name == "a7"


class TestViolationScoreParity:
    @pytest.mark.parametrize("requirements", REQUIREMENT_SETS)
    def test_vectorised_scores_match_scalar(self, table, points, requirements):
        scores = requirements.violation_scores(
            latency_ms=table.latency_ms,
            energy_mj=table.energy_mj,
            power_mw=table.power_mw,
            accuracy_percent=table.accuracy_percent,
            fps=table.fps,
        )
        for row, point in enumerate(points):
            assert scores[row] == _violation_score(point, requirements)

    def test_missing_columns_skip_their_checks(self):
        requirements = Requirements(max_latency_ms=10.0, min_accuracy_percent=90.0)
        scores = requirements.violation_scores(latency_ms=np.array([5.0, 20.0]))
        assert scores[0] == 0.0
        assert scores[1] == pytest.approx(1.0)  # (20 - 10) / 10, accuracy skipped

    def test_requires_at_least_one_column(self):
        with pytest.raises(ValueError):
            Requirements().violation_scores()

    def test_requirements_cache_key_is_stable_and_discriminating(self):
        a = Requirements(max_latency_ms=100.0, priority=2)
        b = Requirements(max_latency_ms=100.0, priority=2)
        c = Requirements(max_latency_ms=200.0, priority=2)
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != c.cache_key()


class TestTopologyKey:
    def test_topology_key_is_cached_by_reference(self, xu3):
        assert xu3.topology_key() is xu3.topology_key()
        assert soc_topology_key(xu3) is xu3.topology_key()

    def test_topology_key_distinguishes_platforms(self, xu3, nano):
        assert xu3.topology_key() != nano.topology_key()

    def test_equal_presets_share_keys(self, xu3):
        from repro.platforms.presets import odroid_xu3

        assert xu3.topology_key() == odroid_xu3().topology_key()


class TestCachedTablePath:
    def test_cached_tables_match_uncached(self, trained_dnn, xu3, energy_model):
        cache = OperatingPointCache()
        space = cache.space_for(trained_dnn, xu3, energy_model)
        cached = cache.enumerate_table(space, temperature_c=45.0)
        direct = OperatingPointSpace(trained_dnn, xu3, energy_model).enumerate_table(
            temperature_c=45.0
        )
        assert cached.points == direct.points

    def test_table_memo_hits(self, trained_dnn, xu3, energy_model):
        cache = OperatingPointCache()
        space = cache.space_for(trained_dnn, xu3, energy_model)
        first = cache.enumerate_table(space, temperature_c=45.0)
        second = cache.enumerate_table(space, temperature_c=45.0)
        assert second is first  # immutable: shared instance, no copy
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)

    def test_pareto_table_memo(self, trained_dnn, xu3, energy_model):
        cache = OperatingPointCache()
        space = cache.space_for(trained_dnn, xu3, energy_model)
        table = cache.enumerate_table(space, temperature_c=45.0)
        key = cache.query_key(space, temperature_c=45.0)
        front = cache.pareto_table_for(key, table)
        again = cache.pareto_table_for(key, table)
        assert again is front
        assert (cache.stats.pareto_hits, cache.stats.pareto_misses) == (1, 1)
        assert front.points == pareto_front(
            table.points, objectives=DECISION_OBJECTIVES, maximise=DECISION_MAXIMISE
        )

    def test_invalidate_flushes_table_memos(self, trained_dnn, xu3, energy_model):
        cache = OperatingPointCache()
        space = cache.space_for(trained_dnn, xu3, energy_model)
        cache.enumerate_table(space, temperature_c=45.0)
        assert cache.entry_count == 1
        cache.invalidate("cores_offline")
        assert cache.entry_count == 0


class TestBenchHarness:
    @pytest.fixture(scope="class")
    def timings(self):
        return run_bench_case("steady", "rtm", repeats=1)

    def test_case_produces_positive_timings(self, timings):
        assert timings.key == "steady/rtm"
        assert timings.decisions > 0
        assert timings.jobs > 0
        assert timings.e2e_s > 0
        assert timings.decide_ms_per_epoch_cached > 0
        assert timings.decide_ms_per_epoch_uncached > 0

    def test_write_and_load_round_trip(self, timings, tmp_path):
        path = tmp_path / "bench.json"
        reference = {"steady/rtm": {"decide_ms_per_epoch_uncached": 100.0, "e2e_s": 10.0}}
        document = write_bench_file(
            str(path), [timings], repeats=1, platform_name="odroid_xu3", reference=reference
        )
        loaded = load_bench_file(str(path))
        assert loaded["results"]["steady/rtm"] == document["results"]["steady/rtm"]
        assert loaded["reference"] == reference
        speedup = loaded["speedup_vs_reference"]["steady/rtm"]
        assert speedup["decide_ms_per_epoch_uncached"] > 1.0

    def test_compare_flags_regressions(self, timings):
        tight = {
            "results": {
                "steady/rtm": {
                    "decide_ms_per_epoch_cached": timings.decide_ms_per_epoch_cached / 10.0,
                    "decide_ms_per_epoch_uncached": timings.decide_ms_per_epoch_uncached / 10.0,
                }
            }
        }
        regressions = compare_bench([timings], tight, max_regression=0.25)
        assert {r.metric for r in regressions} == {
            "decide_ms_per_epoch_cached",
            "decide_ms_per_epoch_uncached",
        }
        assert all(r.ratio > 1.25 for r in regressions)

    def test_compare_passes_within_tolerance(self, timings):
        loose = {
            "results": {
                "steady/rtm": {
                    "decide_ms_per_epoch_cached": timings.decide_ms_per_epoch_cached,
                    "decide_ms_per_epoch_uncached": timings.decide_ms_per_epoch_uncached,
                }
            }
        }
        assert compare_bench([timings], loose, max_regression=0.25) == []

    def test_compare_ignores_unknown_cases(self, timings):
        assert compare_bench([timings], {"results": {}}, max_regression=0.0) == []

    def test_committed_baseline_shows_kernel_speedups(self):
        # The acceptance bar of this PR: the committed trajectory must show
        # >= 3x faster uncached decide() and >= 1.5x faster end-to-end
        # rush_hour against the pre-kernel reference profile.
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "BENCH_decision_kernel.json"
        document = load_bench_file(str(path))
        speedup = document["speedup_vs_reference"]["rush_hour/rtm"]
        assert speedup["decide_ms_per_epoch_uncached"] >= 3.0
        assert speedup["e2e_s"] >= 1.5

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            run_bench_case("steady", "rtm", repeats=0)
        with pytest.raises(ValueError):
            compare_bench([], {}, max_regression=-0.1)


class TestBenchTimingsShape:
    def test_as_dict_fields(self):
        timings = BenchTimings(
            scenario="s",
            manager="m",
            decisions=10,
            jobs=20,
            e2e_s=1.0,
            e2e_s_uncached=2.0,
            decide_ms_per_epoch_cached=0.5,
            decide_ms_per_epoch_uncached=1.5,
        )
        assert timings.key == "s/m"
        assert timings.as_dict() == {
            "decisions": 10,
            "jobs": 20,
            "e2e_s": 1.0,
            "e2e_s_uncached": 2.0,
            "decide_ms_per_epoch_cached": 0.5,
            "decide_ms_per_epoch_uncached": 1.5,
        }
