"""Tests for the scenario composition algebra, arrival traces and the fuzzer.

The tentpole contracts:

* every composition operator returns a plain, valid ``Scenario`` built from
  copies (no aliased mutable state with the sources);
* ``ArrivalTrace`` save -> load -> replay is bit-identical in simulated
  behaviour to the recording run;
* every new composed/trace/fuzzed scenario flows through the
  ``ExperimentSpec`` machinery: TOML round-trips preserve the spec id, and
  executed specs reproduce the golden fingerprints.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentSpec, dump_specs, load_specs, run
from repro.workloads import (
    ArrivalTrace,
    ScenarioFuzzer,
    TraceFormatError,
    build_scenario,
    mix,
    perturb,
    scale,
    splice,
    with_platform,
)
from repro.workloads.scenarios import ScenarioEventKind

from tests.test_golden_traces import GOLDEN_FINGERPRINTS

#: Scenarios this PR added to the registry (the composition layer).
NEW_SCENARIOS = [
    "battery_saver_accuracy_critical",
    "bursty_x2_exynos",
    "compose",
    "double_rush_hour",
    "fig2_bursty",
    "fuzzed",
    "mixed_criticality_overload",
    "overload_slow_motion",
    "rush_hour_then_battery_saver",
    "steady_then_overload",
    "thermal_stress_jittered",
    "trace",
]


def _timeline(scenario):
    """Comparable shape of a scenario's workload timeline."""
    return [
        (
            app.app_id,
            app.kind.value,
            app.arrival_time_ms,
            app.departure_time_ms,
            app.requirements,
        )
        for app in scenario.applications
    ]


# ------------------------------------------------------------------ operators


class TestMix:
    def test_union_of_applications_and_events(self):
        a = build_scenario("fig2")
        b = build_scenario("bursty", seed=1)
        mixed = mix(a, b)
        assert len(mixed.applications) == len(a.applications) + len(b.applications)
        assert len(mixed.extra_events) == len(a.extra_events) + len(b.extra_events)
        assert mixed.platform_name == a.platform_name
        assert mixed.duration_ms == max(a.duration_ms, b.duration_ms)

    def test_colliding_ids_renamed_consistently(self):
        a = build_scenario("fig2")
        mixed = mix(a, build_scenario("fig2"))
        ids = [app.app_id for app in mixed.applications]
        assert len(ids) == len(set(ids))
        assert "dnn2_2" in ids
        # The second fig2's requirement-change event follows its renamed app.
        renamed_events = [event for event in mixed.extra_events if event.app_id == "dnn2_2"]
        assert len(renamed_events) == 1
        assert renamed_events[0].kind is ScenarioEventKind.REQUIREMENT_CHANGE

    def test_sources_are_not_aliased(self):
        a = build_scenario("steady", seed=0)
        mixed = mix(a, build_scenario("bursty", seed=0))
        mixed.applications[0].requirements = mixed.applications[0].requirements.with_changes(
            priority=9
        )
        assert a.applications[0].requirements.priority != 9


class TestScale:
    def test_timeline_scaled_with_duration(self):
        base = build_scenario("bursty", seed=0)
        scaled = scale(base, arrival_factor=0.5)
        for original, result in zip(base.applications, scaled.applications):
            assert result.arrival_time_ms == pytest.approx(original.arrival_time_ms * 0.5)
            if original.departure_time_ms is not None:
                assert result.departure_time_ms == pytest.approx(
                    original.departure_time_ms * 0.5
                )
        assert scaled.duration_ms == pytest.approx(base.duration_ms * 0.5)

    def test_duration_factor_overrides_window(self):
        base = build_scenario("steady", seed=0)
        scaled = scale(base, arrival_factor=0.5, duration_factor=1.0)
        assert scaled.duration_ms == base.duration_ms

    def test_extra_events_scaled(self):
        base = build_scenario("fig2")
        scaled = scale(base, arrival_factor=2.0)
        assert scaled.extra_events[0].time_ms == pytest.approx(
            base.extra_events[0].time_ms * 2.0
        )

    @pytest.mark.parametrize("kwargs", [{"arrival_factor": 0.0}, {"duration_factor": -1.0}])
    def test_invalid_factors_raise(self, kwargs):
        with pytest.raises(ValueError):
            scale(build_scenario("steady"), **{"arrival_factor": 1.0, **kwargs})

    def test_truncating_factor_combination_warns(self):
        # Stretching arrivals past the (less-stretched) window silently drops
        # the late applications from the simulation; that must be loud.
        base = build_scenario("bursty", seed=0)
        with pytest.warns(UserWarning, match="past the .* horizon"):
            scale(base, arrival_factor=50.0, duration_factor=1.0)

    def test_every_scaled_composite_keeps_all_arrivals_inside_the_window(self):
        for name in ("overload_slow_motion", "bursty_x2_exynos"):
            scenario = build_scenario(name, seed=0)
            assert all(
                app.arrival_time_ms < scenario.duration_ms for app in scenario.applications
            ), name


class TestSplice:
    def test_phase_change_semantics(self):
        a = build_scenario("rush_hour", seed=0)
        b = build_scenario("battery_saver", seed=0)
        spliced = splice(a, b, at_ms=18000.0)
        first = [app for app in spliced.applications if app.arrival_time_ms < 18000.0]
        second = [app for app in spliced.applications if app.arrival_time_ms >= 18000.0]
        assert first and second
        for app in first:
            assert app.departure_time_ms is not None and app.departure_time_ms <= 18000.0
        assert len(second) == len(b.applications)
        assert spliced.duration_ms == pytest.approx(18000.0 + b.duration_ms)

    def test_first_phase_late_arrivals_dropped(self):
        a = build_scenario("rush_hour", seed=0)  # cam arrivals at 8-9.3 s
        spliced = splice(a, build_scenario("steady", seed=0), at_ms=5000.0)
        first_ids = {app.app_id for app in spliced.applications if app.arrival_time_ms < 5000.0}
        assert first_ids == {"nav"}

    def test_invalid_splice_point_raises(self):
        with pytest.raises(ValueError):
            splice(build_scenario("steady"), build_scenario("bursty"), at_ms=0.0)


class TestWithPlatform:
    def test_platform_replaced(self):
        moved = with_platform(build_scenario("steady", seed=0), "jetson_nano")
        assert moved.platform_name == "jetson_nano"
        assert moved.build_platform().name == "jetson_nano"

    def test_unknown_platform_rejected(self):
        with pytest.raises(KeyError, match="unknown platform"):
            with_platform(build_scenario("steady"), "pixel_zero")


class TestPerturb:
    def test_deterministic_per_seed(self):
        base = build_scenario("bursty", seed=0)
        assert _timeline(perturb(base, seed=7)) == _timeline(perturb(base, seed=7))
        assert _timeline(perturb(base, seed=7)) != _timeline(perturb(base, seed=8))

    def test_preserves_validity_and_lifetimes(self):
        base = build_scenario("multi_app_contention", seed=3)
        jittered = perturb(base, seed=1)
        for original, result in zip(base.applications, jittered.applications):
            assert result.arrival_time_ms >= 0.0
            assert result.requirements.priority == original.requirements.priority
            if original.departure_time_ms is not None:
                original_lifetime = original.departure_time_ms - original.arrival_time_ms
                lifetime = result.departure_time_ms - result.arrival_time_ms
                assert lifetime == pytest.approx(original_lifetime)
            accuracy = result.requirements.min_accuracy_percent
            if accuracy is not None:
                assert 0.0 <= accuracy <= 100.0

    def test_zero_jitter_is_identity_on_the_timeline(self):
        base = build_scenario("bursty", seed=2)
        unmoved = perturb(base, seed=5, arrival_jitter_ms=0.0, requirement_jitter=0.0)
        assert _timeline(unmoved) == _timeline(base)

    def test_invalid_jitter_raises(self):
        with pytest.raises(ValueError):
            perturb(build_scenario("steady"), seed=0, requirement_jitter=1.5)

    def test_events_stay_inside_their_applications_lifetime(self):
        # The simulator silently drops events for applications that are not
        # live, so jitter must never push a requirement switch outside its
        # app's window — even at jitter magnitudes larger than the gaps.
        from repro.workloads import Requirements, Scenario, make_dnn_application
        from repro.workloads.scenarios import ScenarioEvent, ScenarioEventKind
        from repro.workloads.tasks import DNNApplication

        base = build_scenario("fig2")
        template = base.applications[0]
        assert isinstance(template, DNNApplication)
        app = make_dnn_application(
            app_id="short",
            trained=template.trained,
            requirements=Requirements(target_fps=5.0),
            arrival_time_ms=2000.0,
            departure_time_ms=3000.0,
        )
        event = ScenarioEvent(
            time_ms=2900.0,
            kind=ScenarioEventKind.REQUIREMENT_CHANGE,
            app_id="short",
            new_requirements=Requirements(target_fps=2.0),
        )
        scenario = Scenario(
            name="short_lived",
            platform_name="odroid_xu3",
            applications=[app],
            duration_ms=10000.0,
            extra_events=[event],
            description="One short-lived app with a late requirement switch.",
        )
        for seed in range(8):
            jittered = perturb(scenario, seed=seed, arrival_jitter_ms=5000.0)
            moved = jittered.applications[0]
            moved_event = jittered.extra_events[0]
            assert moved.arrival_time_ms <= moved_event.time_ms < moved.departure_time_ms


class TestComposeScenario:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown compose op"):
            build_scenario("compose", op="transmogrify")

    def test_operand_params_reach_the_operator(self):
        spliced = build_scenario(
            "compose", op="splice", a="steady", b="overload", at_ms=6000.0
        )
        assert spliced.duration_ms == pytest.approx(6000.0 + 20000.0)

    def test_seeded_operands_draw_distinct_seeds(self):
        mixed = build_scenario("compose", op="mix", a="bursty", b="bursty", seed=4)
        arrivals = [app.arrival_time_ms for app in mixed.applications]
        # a at seed 4, b at seed 5: the two halves are different draws.
        half = len(arrivals) // 2
        assert arrivals[:half] != arrivals[half:]

    def test_operator_irrelevant_params_rejected(self):
        # A leftover at_ms on a spec edited from splice to mix must not
        # silently describe a different experiment.
        with pytest.raises(ValueError, match=r"op 'mix' does not use params \['at_ms'\]"):
            build_scenario("compose", op="mix", a="steady", b="bursty", at_ms=18000.0)
        with pytest.raises(ValueError, match=r"op 'scale' does not use params \['b'\]"):
            build_scenario("compose", op="scale", a="steady", b="bursty", arrival_factor=0.5)
        with pytest.raises(ValueError, match="op 'perturb' does not use params"):
            build_scenario("compose", op="perturb", a="steady", b_seed=3)


# -------------------------------------------------------------- arrival trace


class TestArrivalTraceRoundTrip:
    @pytest.mark.parametrize("name", ["fig2", "thermal_stress", "bursty"])
    def test_file_round_trip_preserves_the_timeline(self, tmp_path, name):
        source = build_scenario(name, seed=0)
        path = tmp_path / f"{name}.jsonl"
        ArrivalTrace.from_scenario(source).save(path)
        replayed = ArrivalTrace.load(path).to_scenario()
        assert _timeline(replayed) == _timeline(source)
        assert replayed.duration_ms == source.duration_ms
        assert replayed.platform_name == source.platform_name
        assert [
            (event.time_ms, event.kind, event.app_id, event.new_requirements)
            for event in replayed.extra_events
        ] == [
            (event.time_ms, event.kind, event.app_id, event.new_requirements)
            for event in source.extra_events
        ]

    @pytest.mark.parametrize(
        "name,seed,manager",
        [("bursty", 2, "rtm"), ("thermal_stress", 0, "governor_only")],
    )
    def test_replay_is_bit_identical_to_the_recording_run(self, tmp_path, name, seed, manager):
        path = tmp_path / "trace.jsonl"
        ArrivalTrace.from_scenario(build_scenario(name, seed=seed)).save(path)
        direct = run(ExperimentSpec(scenario=name, seed=seed, manager=manager))
        replayed = run(
            ExperimentSpec(
                scenario="trace", manager=manager, scenario_params={"path": str(path)}
            )
        )
        assert replayed.trace.fingerprint() == direct.trace.fingerprint()

    def test_model_sharing_structure_recorded(self):
        shared = ArrivalTrace.from_scenario(build_scenario("rush_hour", seed=0))
        refs = {r["model_ref"] for r in shared.applications if "model_ref" in r}
        assert refs == {0}  # rush_hour's DNNs co-scale one model
        separate = ArrivalTrace.from_scenario(build_scenario("fig2"))
        refs = {r["model_ref"] for r in separate.applications if "model_ref" in r}
        assert refs == {0, 1}  # fig2's DNNs are independent models

    def test_records_input_size_and_requirement_switches(self):
        trace = ArrivalTrace.from_scenario(build_scenario("fig2"))
        dnn_records = [r for r in trace.applications if r["kind"] == "dnn_inference"]
        assert all(r["input_size"] == [3, 32, 32] for r in dnn_records)
        assert len(trace.events) == 1
        assert trace.events[0]["kind"] == "requirement_change"
        assert trace.events[0]["requirements"]["min_accuracy_percent"] == 56.0

    def test_save_is_atomic(self, tmp_path, monkeypatch):
        # Regression: a crash mid-save used to leave a truncated trace at the
        # destination; the same-directory-temp + os.replace scheme keeps the
        # original readable through any failure before the final rename.
        import os

        path = tmp_path / "trace.jsonl"
        ArrivalTrace.from_scenario(build_scenario("fig2")).save(path)
        original = path.read_text()
        monkeypatch.setattr(os, "replace", lambda src, dst: (_ for _ in ()).throw(OSError("boom")))
        with pytest.raises(OSError):
            ArrivalTrace.from_scenario(build_scenario("bursty", seed=1)).save(path)
        assert path.read_text() == original
        assert ArrivalTrace.load(path) is not None


class TestArrivalTraceErrors:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(TraceFormatError, match="empty"):
            ArrivalTrace.load(path)

    def test_foreign_header_rejected(self, tmp_path):
        path = tmp_path / "foreign.jsonl"
        path.write_text('{"format": "something-else"}\n', encoding="utf-8")
        with pytest.raises(TraceFormatError, match="not a repro-arrival-trace"):
            ArrivalTrace.load(path)

    def test_newer_version_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            '{"format": "repro-arrival-trace", "version": 99, "duration_ms": 1000.0}\n',
            encoding="utf-8",
        )
        with pytest.raises(TraceFormatError, match="version 99"):
            ArrivalTrace.load(path)

    def test_unknown_record_type_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"format": "repro-arrival-trace", "version": 1, "duration_ms": 1000.0}\n'
            '{"record": "mystery"}\n',
            encoding="utf-8",
        )
        with pytest.raises(TraceFormatError, match="unknown record type"):
            ArrivalTrace.load(path)

    def test_conflicting_model_refs_rejected(self):
        trace = ArrivalTrace.from_scenario(build_scenario("rush_hour", seed=0))
        trace.applications[1]["num_increments"] = 2
        with pytest.raises(TraceFormatError, match="conflicting increment counts"):
            trace.to_scenario()

    def test_missing_duration_rejected_as_format_error(self, tmp_path):
        path = tmp_path / "no_duration.jsonl"
        path.write_text('{"format": "repro-arrival-trace", "version": 1}\n', encoding="utf-8")
        with pytest.raises(TraceFormatError, match="invalid trace header"):
            ArrivalTrace.load(path)

    def test_non_numeric_version_rejected_as_format_error(self, tmp_path):
        path = tmp_path / "bad_version.jsonl"
        path.write_text(
            '{"format": "repro-arrival-trace", "version": "abc", "duration_ms": 1.0}\n',
            encoding="utf-8",
        )
        with pytest.raises(TraceFormatError, match="invalid trace header"):
            ArrivalTrace.load(path)

    def test_non_table_record_rejected_as_format_error(self, tmp_path):
        path = tmp_path / "array_record.jsonl"
        path.write_text(
            '{"format": "repro-arrival-trace", "version": 1, "duration_ms": 1.0}\n[1, 2]\n',
            encoding="utf-8",
        )
        with pytest.raises(TraceFormatError, match="non-table record"):
            ArrivalTrace.load(path)

    def test_foreign_dnn_family_rejected_at_replay(self):
        # Replay reconstitutes the case-study network; a trace recorded from
        # a different model must fail loudly, not silently diverge.
        trace = ArrivalTrace.from_scenario(build_scenario("bursty", seed=0))
        for record in trace.applications:
            if record["kind"] == "dnn_inference":
                record["input_size"] = [3, 224, 224]
        with pytest.raises(TraceFormatError, match="cannot be reconstituted"):
            trace.to_scenario()

    def test_missing_file_reported(self, tmp_path):
        with pytest.raises(TraceFormatError, match="cannot read"):
            ArrivalTrace.load(tmp_path / "does_not_exist.jsonl")

    def test_non_utf8_file_reported(self, tmp_path):
        path = tmp_path / "binary.jsonl"
        path.write_bytes(b"\xff\xfe\x00binary")
        with pytest.raises(TraceFormatError, match="cannot read"):
            ArrivalTrace.load(path)


# -------------------------------------------------------------------- fuzzer


class TestScenarioFuzzer:
    def test_equal_seeds_replay_identically(self):
        assert _timeline(ScenarioFuzzer(seed=11).scenario()) == _timeline(
            ScenarioFuzzer(seed=11).scenario()
        )

    def test_seeds_explore_the_space(self):
        timelines = {repr(_timeline(ScenarioFuzzer(seed=s).scenario())) for s in range(6)}
        assert len(timelines) == 6

    def test_forcing_the_platform_keeps_the_workload(self):
        free = ScenarioFuzzer(seed=3).scenario()
        forced = ScenarioFuzzer(seed=3).scenario(platform_name="jetson_nano")
        assert forced.platform_name == "jetson_nano"
        assert _timeline(forced) == _timeline(free)

    def test_children_are_distinct(self):
        children = ScenarioFuzzer(seed=0).scenarios(4)
        assert len({repr(_timeline(child)) for child in children}) == 4

    def test_adjacent_roots_do_not_share_children(self):
        first = [_timeline(s) for s in ScenarioFuzzer(seed=0).scenarios(3)]
        second = [_timeline(s) for s in ScenarioFuzzer(seed=1).scenarios(3)]
        assert all(timeline not in first for timeline in second)

    def test_scenarios_validates_count(self):
        with pytest.raises(ValueError):
            ScenarioFuzzer(seed=0).scenarios(0)

    def test_needs_platforms(self):
        with pytest.raises(ValueError):
            ScenarioFuzzer(seed=0, platforms=())


# ------------------------------------------------- spec round trip (tentpole)


class TestComposedScenariosThroughSpecs:
    def test_every_new_scenario_round_trips_through_toml(self, tmp_path):
        specs = [ExperimentSpec(scenario=name).validate() for name in NEW_SCENARIOS]
        path = tmp_path / "composed.toml"
        dump_specs(specs, path)
        loaded = load_specs(path)
        assert loaded == specs
        assert [spec.spec_id() for spec in loaded] == [spec.spec_id() for spec in specs]

    @pytest.mark.parametrize(
        "name", ["rush_hour_then_battery_saver", "fuzzed", "bursty_x2_exynos"]
    )
    def test_toml_loaded_spec_reproduces_the_golden_fingerprint(self, tmp_path, name):
        path = tmp_path / "spec.toml"
        ExperimentSpec(scenario=name, manager="rtm").save(path)
        loaded = load_specs(path)[0]
        assert loaded.spec_id() == ExperimentSpec(scenario=name, manager="rtm").spec_id()
        result = run(loaded)
        assert result.trace.fingerprint() == GOLDEN_FINGERPRINTS[(name, "rtm")]

    def test_compose_params_are_validated_by_specs(self):
        from repro.experiments import SpecError

        with pytest.raises(SpecError, match="does not accept"):
            ExperimentSpec(scenario="compose", scenario_params={"opp": "mix"}).validate()
        ExperimentSpec(
            scenario="compose", scenario_params={"op": "splice", "at_ms": 5000.0}
        ).validate()

    def test_spec_replay_rejects_silent_platform_mismatch(self, tmp_path):
        # A spec's platform field always has a value, so replaying a trace
        # recorded on another board must fail loudly unless the re-targeting
        # is marked deliberate.
        path = tmp_path / "nano.jsonl"
        ArrivalTrace.from_scenario(
            build_scenario("steady", seed=1, platform_name="jetson_nano")
        ).save(path)
        mismatched = ExperimentSpec(scenario="trace", scenario_params={"path": str(path)})
        with pytest.raises(TraceFormatError, match="recorded on 'jetson_nano'"):
            run(mismatched)
        matched = run(
            ExperimentSpec(
                scenario="trace",
                platform="jetson_nano",
                manager="governor_only",
                scenario_params={"path": str(path)},
            )
        )
        direct = run(
            ExperimentSpec(
                scenario="steady", seed=1, platform="jetson_nano", manager="governor_only"
            )
        )
        assert matched.trace.fingerprint() == direct.trace.fingerprint()
        replatformed = run(
            ExperimentSpec(
                scenario="trace",
                manager="governor_only",
                scenario_params={"path": str(path), "replatform": True},
            )
        )
        assert replatformed.trace.fingerprint() != direct.trace.fingerprint()

    def test_missing_model_refs_get_independent_models(self):
        # External traces that omit model_ref must not silently co-scale all
        # DNNs on one shared model.
        trace = ArrivalTrace.from_scenario(build_scenario("bursty", seed=0))
        for record in trace.applications:
            record.pop("model_ref", None)
        rebuilt = trace.to_scenario()
        dnns = rebuilt.dnn_applications
        assert len(dnns) >= 2
        assert dnns[0].trained is not dnns[1].trained
        # With the recorded refs intact the sharing structure is preserved.
        shared = ArrivalTrace.from_scenario(build_scenario("bursty", seed=0)).to_scenario()
        assert shared.dnn_applications[0].trained is shared.dnn_applications[1].trained

    def test_trace_path_param_is_spec_addressable(self, tmp_path):
        path = tmp_path / "steady.jsonl"
        ArrivalTrace.from_scenario(build_scenario("steady", seed=1)).save(path)
        spec = ExperimentSpec(
            scenario="trace", manager="governor_only", scenario_params={"path": str(path)}
        ).validate()
        round_tripped = ExperimentSpec.from_dict(spec.to_dict())
        assert round_tripped.spec_id() == spec.spec_id()
        result = run(round_tripped)
        direct = run(ExperimentSpec(scenario="steady", seed=1, manager="governor_only"))
        assert result.trace.fingerprint() == direct.trace.fingerprint()
