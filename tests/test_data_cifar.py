"""Tests for the synthetic CIFAR-10 validation-set model."""

import numpy as np
import pytest

from repro.data.cifar import CIFAR10_CLASSES, SyntheticCifar10, make_validation_set


class TestSyntheticCifar10:
    def test_default_shape_matches_cifar10(self):
        dataset = make_validation_set()
        assert dataset.num_classes == 10
        assert dataset.images_per_class == 1000
        assert dataset.num_images == 10000
        assert dataset.class_names == CIFAR10_CLASSES

    def test_labels_grouped_by_class(self):
        dataset = make_validation_set(images_per_class=5)
        labels = dataset.labels()
        assert labels.shape == (50,)
        assert list(labels[:5]) == [0] * 5
        assert list(labels[-5:]) == [9] * 5

    def test_class_slices_cover_all_images(self):
        dataset = make_validation_set(images_per_class=100)
        slices = dataset.class_slices()
        covered = sum(s.stop - s.start for s in slices.values())
        assert covered == dataset.num_images

    def test_difficulties_in_range_and_deterministic(self):
        a = make_validation_set(seed=3)
        b = make_validation_set(seed=3)
        c = make_validation_set(seed=4)
        assert a.difficulty == b.difficulty
        assert a.difficulty != c.difficulty
        assert all(0.0 <= value <= 1.0 for value in a.difficulty.values())

    def test_class_difficulties_in_class_order(self):
        dataset = make_validation_set()
        difficulties = dataset.class_difficulties()
        assert len(difficulties) == dataset.num_classes
        assert difficulties[0] == dataset.difficulty[dataset.class_names[0]]

    def test_invalid_images_per_class_rejected(self):
        with pytest.raises(ValueError):
            SyntheticCifar10(images_per_class=0)

    def test_empty_class_list_rejected(self):
        with pytest.raises(ValueError):
            SyntheticCifar10(class_names=())

    def test_custom_classes(self):
        dataset = make_validation_set(class_names=["a", "b"], images_per_class=10)
        assert dataset.num_classes == 2
        assert dataset.num_images == 20
        assert set(np.unique(dataset.labels())) == {0, 1}
