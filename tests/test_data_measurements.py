"""Tests for the published measurement data (Table I, Fig 4 anchors)."""

import pytest

from repro.data.measurements import (
    CASE_STUDY_BUDGETS,
    FIG4A_A15_FREQUENCIES_MHZ,
    FIG4A_A7_FREQUENCIES_MHZ,
    FIG4B_ACCURACY_BY_CONFIGURATION,
    FIG4B_ACCURACY_STDDEV_BY_CONFIGURATION,
    TABLE1_ROWS,
    table1_by_platform,
)


class TestTable1:
    def test_has_ten_rows(self):
        assert len(TABLE1_ROWS) == 10

    def test_platform_split(self):
        assert len(table1_by_platform("jetson_nano")) == 4
        assert len(table1_by_platform("odroid_xu3")) == 6

    def test_unknown_platform_raises(self):
        with pytest.raises(ValueError, match="unknown platform"):
            table1_by_platform("raspberry_pi")

    def test_accuracy_is_platform_independent(self):
        accuracies = {row.top1_accuracy for row in TABLE1_ROWS}
        assert accuracies == {71.2}

    def test_energy_consistent_with_power_and_time(self):
        # Energy should be approximately power * time for every row (the
        # paper's numbers are independently measured, so allow 10 %).
        for row in TABLE1_ROWS:
            derived_mj = row.power_mw * row.execution_time_ms / 1000.0
            assert derived_mj == pytest.approx(row.energy_mj, rel=0.10), row.cores

    def test_a15_faster_but_hungrier_than_a7(self):
        a15 = {row.frequency_mhz: row for row in table1_by_platform("odroid_xu3") if row.cluster == "a15"}
        a7 = {row.frequency_mhz: row for row in table1_by_platform("odroid_xu3") if row.cluster == "a7"}
        # At the shared 200 MHz point the A15 is faster but draws more power.
        assert a15[200.0].execution_time_ms < a7[200.0].execution_time_ms
        assert a15[200.0].power_mw > a7[200.0].power_mw

    def test_gpu_fastest_on_jetson(self):
        rows = table1_by_platform("jetson_nano")
        gpu = [r for r in rows if r.cluster == "gpu"]
        cpu = [r for r in rows if r.cluster == "a57"]
        assert max(r.execution_time_ms for r in gpu) < min(r.execution_time_ms for r in cpu)

    def test_latency_decreases_with_frequency_within_cluster(self):
        for cluster in ("a15", "a7"):
            rows = sorted(
                (r for r in TABLE1_ROWS if r.cluster == cluster), key=lambda r: r.frequency_mhz
            )
            latencies = [r.execution_time_ms for r in rows]
            assert latencies == sorted(latencies, reverse=True)


class TestFig4Anchors:
    def test_a15_has_17_frequency_levels(self):
        assert len(FIG4A_A15_FREQUENCIES_MHZ) == 17
        assert FIG4A_A15_FREQUENCIES_MHZ[0] == 200.0
        assert FIG4A_A15_FREQUENCIES_MHZ[-1] == 1800.0

    def test_a7_has_12_frequency_levels(self):
        assert len(FIG4A_A7_FREQUENCIES_MHZ) == 12
        assert FIG4A_A7_FREQUENCIES_MHZ[0] == 200.0
        assert FIG4A_A7_FREQUENCIES_MHZ[-1] == 1300.0

    def test_fig4b_accuracies_match_paper(self):
        assert FIG4B_ACCURACY_BY_CONFIGURATION[0.25] == 56.0
        assert FIG4B_ACCURACY_BY_CONFIGURATION[0.50] == 62.7
        assert FIG4B_ACCURACY_BY_CONFIGURATION[0.75] == 68.8
        assert FIG4B_ACCURACY_BY_CONFIGURATION[1.00] == 71.2

    def test_fig4b_accuracy_monotone_in_configuration(self):
        fractions = sorted(FIG4B_ACCURACY_BY_CONFIGURATION)
        accuracies = [FIG4B_ACCURACY_BY_CONFIGURATION[f] for f in fractions]
        assert accuracies == sorted(accuracies)

    def test_fig4b_stddev_decreases_with_capacity(self):
        fractions = sorted(FIG4B_ACCURACY_STDDEV_BY_CONFIGURATION)
        stddevs = [FIG4B_ACCURACY_STDDEV_BY_CONFIGURATION[f] for f in fractions]
        assert stddevs == sorted(stddevs, reverse=True)

    def test_case_study_budgets_reference_known_clusters(self):
        for target in CASE_STUDY_BUDGETS.values():
            assert target["cluster"] in {"a7", "a15"}
            assert 0.0 < float(target["configuration"]) <= 1.0
