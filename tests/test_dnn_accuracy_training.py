"""Tests for the accuracy model, simulated training and pruning baselines."""

import numpy as np
import pytest

from repro.data.measurements import FIG4B_ACCURACY_BY_CONFIGURATION
from repro.dnn.accuracy import AccuracyModel
from repro.dnn.pruning import filter_prune, magnitude_prune, prune_to_latency
from repro.dnn.training import IncrementalTrainer


class TestAccuracyModel:
    def test_reproduces_fig4b_anchors(self):
        model = AccuracyModel()
        for fraction, accuracy in FIG4B_ACCURACY_BY_CONFIGURATION.items():
            assert model.top1(fraction) == pytest.approx(accuracy)

    def test_monotone_in_capacity(self):
        model = AccuracyModel()
        samples = [model.top1(f) for f in np.linspace(0.01, 1.0, 50)]
        assert all(b >= a - 1e-9 for a, b in zip(samples, samples[1:]))

    def test_zero_capacity_is_chance_level(self):
        model = AccuracyModel(chance_level=10.0)
        assert model.top1(0.0) == pytest.approx(10.0)

    def test_confidence_above_accuracy_and_bounded(self):
        model = AccuracyModel()
        for fraction in (0.25, 0.5, 0.75, 1.0):
            confidence = model.confidence(fraction)
            assert confidence >= model.top1(fraction)
            assert confidence <= 99.0

    def test_class_stddev_shrinks_with_capacity(self):
        model = AccuracyModel()
        assert model.class_stddev(0.25) > model.class_stddev(1.0)

    def test_per_class_matches_mean_and_spread(self, validation_set):
        model = AccuracyModel()
        per_class = model.per_class(0.5, validation_set)
        assert per_class.mean_top1 == pytest.approx(model.top1(0.5), abs=0.5)
        assert per_class.stddev == pytest.approx(model.class_stddev(0.5), abs=0.5)
        assert len(per_class.by_class) == validation_set.num_classes

    def test_per_class_deterministic(self, validation_set):
        model = AccuracyModel()
        a = model.per_class(0.75, validation_set)
        b = model.per_class(0.75, validation_set)
        assert a.by_class == b.by_class

    def test_evaluate_predictions_matches_per_class(self, validation_set):
        model = AccuracyModel()
        correct = model.evaluate_predictions(1.0, validation_set, seed=1)
        assert correct.shape == (validation_set.num_images,)
        overall = correct.mean() * 100.0
        assert overall == pytest.approx(model.top1(1.0), abs=0.5)

    def test_invalid_anchors_rejected(self):
        with pytest.raises(ValueError):
            AccuracyModel(anchors={})
        with pytest.raises(ValueError):
            AccuracyModel(anchors={1.5: 90.0})
        with pytest.raises(ValueError):
            AccuracyModel(anchors={0.5: 70.0, 1.0: 60.0})  # decreasing

    def test_out_of_range_fraction_rejected(self):
        model = AccuracyModel()
        with pytest.raises(ValueError):
            model.top1(-0.1)
        with pytest.raises(ValueError):
            model.top1(1.2)


class TestIncrementalTrainer:
    def test_one_step_per_group(self, trained_dnn):
        history = trained_dnn.history
        assert history.num_steps == 4
        assert [step.trained_groups for step in history.steps] == [1, 2, 3, 4]
        assert [step.frozen_groups for step in history.steps] == [0, 1, 2, 3]

    def test_loss_curves_decrease(self, trained_dnn):
        for step in trained_dnn.history.steps:
            curve = step.loss_curve
            assert len(curve) == 60
            assert curve[-1] < curve[0]
            assert all(b <= a + 1e-9 for a, b in zip(curve, curve[1:]))

    def test_resulting_accuracies_match_fig4b(self, trained_dnn):
        accuracies = trained_dnn.history.final_accuracies()
        assert accuracies[0.25] == pytest.approx(56.0)
        assert accuracies[1.0] == pytest.approx(71.2)

    def test_trained_model_queries(self, trained_dnn):
        assert trained_dnn.top1(0.5) == pytest.approx(62.7)
        assert trained_dnn.top1(0.6) == pytest.approx(62.7)  # snaps to nearest
        assert trained_dnn.confidence(0.25) > trained_dnn.top1(0.25)
        table = trained_dnn.accuracy_table()
        assert set(table) == {25, 50, 75, 100}

    def test_per_class_spread_grows_for_small_configs(self, trained_dnn):
        small = trained_dnn.per_class(0.25)
        large = trained_dnn.per_class(1.0)
        assert small.stddev > large.stddev

    def test_total_epochs(self, trained_dnn):
        assert trained_dnn.history.total_epochs() == 4 * 60

    def test_invalid_trainer_args(self):
        with pytest.raises(ValueError):
            IncrementalTrainer(epochs_per_step=0)


class TestPruning:
    def test_magnitude_prune_keeps_structure(self, reference_network):
        result = magnitude_prune(reference_network, 0.8)
        assert result.sparsity == 0.8
        assert not result.structured
        # Dense hardware still issues every MAC; only a sparse accelerator
        # benefits (the paper's Section III-B argument).
        assert result.dense_macs == reference_network.total_macs()
        assert result.effective_macs_on_sparse_hardware < result.dense_macs
        assert result.remaining_params == pytest.approx(
            reference_network.total_params() * 0.2, rel=0.01
        )

    def test_magnitude_prune_invalid_sparsity(self, reference_network):
        with pytest.raises(ValueError):
            magnitude_prune(reference_network, 1.0)

    def test_filter_prune_shrinks_macs(self, reference_network):
        pruned = filter_prune(reference_network, 0.5)
        assert pruned.total_macs() < reference_network.total_macs()
        assert pruned.total_params() < reference_network.total_params()

    def test_prune_to_latency_meets_budget_when_possible(self, reference_network, xu3, energy_model):
        cluster = xu3.cluster("a15")

        def latency(model):
            return energy_model.latency_model.latency_ms(
                model, cluster, frequency_mhz=1800.0, cores_used=1, soc_name="odroid_xu3"
            )

        full_latency = latency(reference_network)
        budget = full_latency * 0.6
        pruned = prune_to_latency(reference_network, latency, budget)
        assert latency(pruned) <= budget
        assert pruned.total_macs() < reference_network.total_macs()

    def test_prune_to_latency_returns_smallest_when_infeasible(self, reference_network, xu3, energy_model):
        cluster = xu3.cluster("a7")

        def latency(model):
            return energy_model.latency_model.latency_ms(
                model, cluster, frequency_mhz=200.0, cores_used=1, soc_name="odroid_xu3"
            )

        pruned = prune_to_latency(reference_network, latency, latency_budget_ms=1.0)
        # Nothing meets a 1 ms budget on the A7 at 200 MHz; the smallest
        # candidate is returned instead of failing.
        assert pruned.total_macs() < reference_network.total_macs() * 0.2

    def test_prune_to_latency_invalid_budget(self, reference_network):
        with pytest.raises(ValueError):
            prune_to_latency(reference_network, lambda m: 1.0, 0.0)
