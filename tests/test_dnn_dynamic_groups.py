"""Tests for group-convolution transformation and the dynamic DNN."""

import pytest

from repro.dnn.dynamic import DynamicDNN, scale_network_width
from repro.dnn.groups import (
    convert_to_group_convolution,
    group_structure,
    max_supported_groups,
)
from repro.dnn.zoo import cifar_dense_cnn, cifar_group_cnn, tiny_mlp


class TestGroupConversion:
    def test_first_conv_stays_dense(self):
        grouped = cifar_group_cnn(num_groups=4)
        groups = group_structure(grouped)
        assert groups[0] == 1
        assert all(g == 4 for g in groups[1:])

    def test_grouping_reduces_macs_and_params(self):
        dense = cifar_dense_cnn()
        grouped = cifar_group_cnn(num_groups=4)
        assert grouped.total_macs() < dense.total_macs()
        assert grouped.total_params() < dense.total_params()

    def test_groups_of_one_is_identity(self):
        dense = cifar_dense_cnn()
        same = convert_to_group_convolution(dense, 1)
        assert same.total_macs() == dense.total_macs()

    def test_indivisible_channels_rejected(self):
        dense = cifar_dense_cnn()
        with pytest.raises(ValueError, match="divided"):
            convert_to_group_convolution(dense, 7)

    def test_max_supported_groups(self):
        assert max_supported_groups(cifar_dense_cnn()) >= 4
        assert max_supported_groups(tiny_mlp()) == 1


class TestScaleNetworkWidth:
    def test_full_fraction_preserves_model(self):
        base = cifar_group_cnn()
        scaled = scale_network_width(base, 1.0, granularity=4)
        assert scaled.total_macs() == base.total_macs()
        assert scaled.total_params() == base.total_params()

    def test_macs_scale_roughly_linearly(self):
        base = cifar_group_cnn()
        quarter = scale_network_width(base, 0.25, granularity=4)
        half = scale_network_width(base, 0.5, granularity=4)
        assert quarter.total_macs() < half.total_macs() < base.total_macs()
        # Linear-ish scaling: the 25 % model should be within [15 %, 35 %] of
        # the full MAC count (the dense first layer and classifier deviate it
        # slightly from exactly 25 %).
        ratio = quarter.total_macs() / base.total_macs()
        assert 0.15 <= ratio <= 0.35

    def test_classifier_output_width_preserved(self):
        base = cifar_group_cnn()
        for fraction in (0.25, 0.5, 0.75):
            scaled = scale_network_width(base, fraction, granularity=4)
            assert scaled.num_classes == base.num_classes

    def test_shapes_stay_consistent(self):
        base = cifar_group_cnn()
        # Construction validates shape propagation; no exception means pass.
        for fraction in (0.25, 0.5, 0.75, 1.0):
            scale_network_width(base, fraction, granularity=4)

    def test_invalid_fraction_rejected(self):
        base = cifar_group_cnn()
        with pytest.raises(ValueError):
            scale_network_width(base, 0.0)
        with pytest.raises(ValueError):
            scale_network_width(base, 1.5)


class TestDynamicDNN:
    def test_four_increments_give_expected_fractions(self, fresh_dynamic_dnn):
        assert fresh_dynamic_dnn.configurations == [0.25, 0.5, 0.75, 1.0]
        assert fresh_dynamic_dnn.num_increments == 4

    def test_macs_monotone_in_configuration(self, fresh_dynamic_dnn):
        macs = fresh_dynamic_dnn.macs_by_configuration()
        values = [macs[f] for f in sorted(macs)]
        assert values == sorted(values)
        assert values[0] < values[-1]

    def test_params_monotone_in_configuration(self, fresh_dynamic_dnn):
        params = fresh_dynamic_dnn.params_by_configuration()
        values = [params[f] for f in sorted(params)]
        assert values == sorted(values)

    def test_memory_footprint_is_single_model(self, fresh_dynamic_dnn):
        # The dynamic DNN stores every configuration inside the full model's
        # footprint (the paper's storage argument vs static pruning).
        assert fresh_dynamic_dnn.memory_footprint_mb() == pytest.approx(
            fresh_dynamic_dnn.base_model.model_size_mb()
        )

    def test_switching_tracks_overhead_and_count(self, fresh_dynamic_dnn):
        dnn = fresh_dynamic_dnn
        assert dnn.active_fraction == 1.0
        overhead = dnn.set_configuration(0.5)
        assert overhead == dnn.switching_overhead_ms
        assert dnn.active_fraction == 0.5
        assert dnn.switch_count == 1
        # Re-selecting the active configuration is free.
        assert dnn.set_configuration(0.5) == 0.0
        assert dnn.switch_count == 1

    def test_scale_up_and_down_clamp(self, fresh_dynamic_dnn):
        dnn = fresh_dynamic_dnn
        dnn.set_configuration(0.25)
        dnn.scale_down()
        assert dnn.active_fraction == 0.25
        dnn.scale_up()
        assert dnn.active_fraction == 0.5
        dnn.set_configuration(1.0)
        dnn.scale_up()
        assert dnn.active_fraction == 1.0

    def test_nearest_configuration_lookup(self, fresh_dynamic_dnn):
        assert fresh_dynamic_dnn.configuration(0.6).fraction == 0.5
        assert fresh_dynamic_dnn.configuration(0.95).fraction == 1.0
        with pytest.raises(ValueError):
            fresh_dynamic_dnn.configuration(0.0)

    def test_summary_percentages(self, fresh_dynamic_dnn):
        percents = [p for p, _, _ in fresh_dynamic_dnn.summary()]
        assert percents == [25, 50, 75, 100]

    def test_other_increment_counts(self):
        dnn = DynamicDNN(cifar_group_cnn(num_groups=8), num_increments=8)
        assert len(dnn.configurations) == 8
        assert dnn.configurations[0] == pytest.approx(0.125)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            DynamicDNN(cifar_group_cnn(), num_increments=0)
        with pytest.raises(ValueError):
            DynamicDNN(cifar_group_cnn(), switching_overhead_ms=-1.0)
