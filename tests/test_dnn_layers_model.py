"""Tests for structural layers and the network container."""

import pytest

from repro.dnn.layers import (
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    DepthwiseConv2D,
    Flatten,
    FullyConnected,
    GlobalAvgPool2D,
    MaxPool2D,
    ReLU,
)
from repro.dnn.model import NetworkModel


class TestConv2D:
    def test_output_shape_same_padding(self):
        conv = Conv2D(3, 16, kernel_size=3, stride=1, padding=1)
        assert conv.output_shape((3, 32, 32)) == (16, 32, 32)

    def test_output_shape_stride(self):
        conv = Conv2D(3, 16, kernel_size=3, stride=2, padding=1)
        assert conv.output_shape((3, 32, 32)) == (16, 16, 16)

    def test_macs_formula(self):
        conv = Conv2D(8, 16, kernel_size=3, stride=1, padding=1)
        # out 16x32x32, each output needs 8*3*3 MACs
        assert conv.macs((8, 32, 32)) == 32 * 32 * 16 * 8 * 9

    def test_grouping_divides_macs_and_params(self):
        dense = Conv2D(16, 32, kernel_size=3, padding=1, groups=1)
        grouped = Conv2D(16, 32, kernel_size=3, padding=1, groups=4)
        assert grouped.macs((16, 8, 8)) == dense.macs((16, 8, 8)) // 4
        # Weights shrink by the group count; the bias vector is unaffected.
        assert dense.params() == 32 * 16 * 9 + 32
        assert grouped.params() == 32 * (16 // 4) * 9 + 32

    def test_channel_mismatch_raises(self):
        conv = Conv2D(3, 16)
        with pytest.raises(ValueError, match="input channels"):
            conv.output_shape((4, 32, 32))

    def test_indivisible_groups_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            Conv2D(6, 16, groups=4)

    def test_kernel_too_large_raises(self):
        conv = Conv2D(3, 8, kernel_size=7, padding=0)
        with pytest.raises(ValueError):
            conv.output_shape((3, 4, 4))

    def test_depthwise_forces_groups(self):
        dw = DepthwiseConv2D(16, 16, kernel_size=3, padding=1)
        assert dw.groups == 16
        assert dw.macs((16, 8, 8)) == 8 * 8 * 16 * 9
        with pytest.raises(ValueError):
            DepthwiseConv2D(16, 32)


class TestOtherLayers:
    def test_fully_connected(self):
        fc = FullyConnected(128, 10)
        assert fc.output_shape((128,)) == (10,)
        assert fc.macs((128,)) == 1280
        assert fc.params() == 128 * 10 + 10
        with pytest.raises(ValueError):
            fc.output_shape((64,))
        with pytest.raises(ValueError):
            fc.output_shape((128, 1, 1))

    def test_pooling_shapes(self):
        assert MaxPool2D(kernel_size=2).output_shape((8, 32, 32)) == (8, 16, 16)
        assert AvgPool2D(kernel_size=3, stride=2).output_shape((8, 33, 33)) == (8, 16, 16)
        assert MaxPool2D().params() == 0

    def test_global_avg_pool(self):
        layer = GlobalAvgPool2D()
        assert layer.output_shape((64, 7, 7)) == (64,)
        assert layer.macs((64, 7, 7)) == 64 * 49

    def test_batch_norm(self):
        bn = BatchNorm2D(32)
        assert bn.output_shape((32, 8, 8)) == (32, 8, 8)
        assert bn.params() == 64
        with pytest.raises(ValueError):
            bn.output_shape((16, 8, 8))

    def test_relu_and_flatten(self):
        assert ReLU().output_shape((3, 4, 4)) == (3, 4, 4)
        assert ReLU().macs((3, 4, 4)) == 0
        assert Flatten().output_shape((3, 4, 4)) == (48,)

    def test_traffic_bytes_positive(self):
        conv = Conv2D(3, 8, kernel_size=3, padding=1)
        assert conv.traffic_bytes((3, 8, 8)) > 0


class TestNetworkModel:
    def _small_net(self):
        return NetworkModel(
            name="small",
            input_shape=(3, 8, 8),
            layers=[
                Conv2D(3, 8, kernel_size=3, padding=1),
                ReLU(),
                MaxPool2D(kernel_size=2),
                Flatten(),
                FullyConnected(8 * 4 * 4, 10),
            ],
        )

    def test_shape_propagation_and_output(self):
        net = self._small_net()
        assert net.output_shape == (10,)
        assert net.num_classes == 10
        assert net.layer_input_shape(0) == (3, 8, 8)
        assert net.layer_input_shape(4) == (128,)

    def test_totals_are_sums_of_layers(self):
        net = self._small_net()
        reports = net.layer_summary()
        assert net.total_macs() == sum(r.macs for r in reports)
        assert net.total_params() == sum(r.params for r in reports)

    def test_model_size_tracks_precision(self):
        fp32 = self._small_net()
        int8 = NetworkModel("q", fp32.input_shape, fp32.layers, bytes_per_param=1)
        assert int8.model_size_mb() == pytest.approx(fp32.model_size_mb() / 4)

    def test_mismatched_layers_raise_at_construction(self):
        with pytest.raises(ValueError, match="shape error at layer"):
            NetworkModel(
                name="broken",
                input_shape=(3, 8, 8),
                layers=[Conv2D(3, 8), Flatten(), FullyConnected(999, 10)],
            )

    def test_layer_queries(self):
        net = self._small_net()
        assert len(net.conv_layers()) == 1
        assert len(net.fc_layers()) == 1
        assert net.conv_layers()[0][0] == 0

    def test_summary_table_mentions_every_layer(self):
        table = self._small_net().summary_table()
        for kind in ("conv2d", "relu", "max_pool2d", "flatten", "fully_connected"):
            assert kind in table

    def test_with_layers_creates_new_model(self):
        net = self._small_net()
        clone = net.with_layers(net.layers, name="clone")
        assert clone.name == "clone"
        assert clone.total_macs() == net.total_macs()

    def test_empty_layer_list_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel("empty", (3, 8, 8), [])

    def test_peak_activation_at_least_input(self):
        net = self._small_net()
        assert net.peak_activation_elements() >= 3 * 8 * 8
