"""Tests for the model zoo."""

import pytest

from repro.dnn.zoo import (
    MODEL_BUILDERS,
    alexnet_like,
    cifar_dense_cnn,
    cifar_group_cnn,
    make_dynamic_cifar_dnn,
    mobilenet_like,
    tiny_mlp,
)


class TestZoo:
    def test_every_registered_model_builds(self):
        for name, builder in MODEL_BUILDERS.items():
            model = builder()
            assert model.total_macs() > 0
            assert model.total_params() > 0

    def test_cifar_group_cnn_scale(self):
        model = cifar_group_cnn()
        # The case-study network is a small CIFAR-10 CNN: tens of millions of
        # MACs and on the order of a million parameters.
        assert 40e6 < model.total_macs() < 80e6
        assert 0.5e6 < model.total_params() < 3e6
        assert model.input_shape == (3, 32, 32)
        assert model.num_classes == 10

    def test_dense_variant_is_larger(self):
        assert cifar_dense_cnn().total_macs() > cifar_group_cnn().total_macs()

    def test_dynamic_cifar_dnn_builder(self):
        dnn = make_dynamic_cifar_dnn()
        assert dnn.num_increments == 4
        assert dnn.configurations == [0.25, 0.5, 0.75, 1.0]

    def test_alexnet_like_scale(self):
        model = alexnet_like()
        assert model.input_shape == (3, 224, 224)
        assert model.num_classes == 1000
        # AlexNet is roughly 0.7 GMACs and ~60 M parameters.
        assert 0.4e9 < model.total_macs() < 1.5e9
        assert 40e6 < model.total_params() < 80e6

    def test_mobilenet_like_scale_and_width_multiplier(self):
        full = mobilenet_like()
        half = mobilenet_like(width_multiplier=0.5)
        # MobileNet-v1 is roughly 0.57 GMACs / 4.2 M parameters.
        assert 0.3e9 < full.total_macs() < 0.9e9
        assert 2e6 < full.total_params() < 8e6
        assert half.total_macs() < full.total_macs()
        with pytest.raises(ValueError):
            mobilenet_like(width_multiplier=0.0)

    def test_tiny_mlp(self):
        model = tiny_mlp()
        assert model.num_classes == 10
        assert model.total_params() < 10000
