"""Tests for the declarative experiment layer.

Covers the generic registry, spec round-tripping (dict / TOML / JSON),
content-hash stability across process boundaries, spec execution parity with
the legacy sweep path (golden fingerprints), and worker-count-independent
replay of committed spec files — the reproducibility contract of the API.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.analysis.parallel import SweepCase
from repro.experiments import (
    ExperimentSpec,
    SpecError,
    dump_specs,
    grid_specs,
    load_specs,
    run,
    run_many,
)
from repro.registry import Registry
from repro.sim.engine import SimulatorConfig
from tests.test_golden_traces import GOLDEN_FINGERPRINTS


class TestRegistry:
    def make(self) -> Registry:
        registry = Registry("widget")
        registry.register("alpha", lambda: "a", colour="red")

        @registry.register("beta")
        def beta():
            """A beta widget."""
            return "b"

        return registry

    def test_mapping_protocol(self):
        registry = self.make()
        assert sorted(registry) == ["alpha", "beta"]
        assert "alpha" in registry and "gamma" not in registry
        assert len(registry) == 2
        assert registry["alpha"]() == "a"

    def test_get_with_default_behaves_like_mapping_get(self):
        registry = self.make()
        assert registry.get("gamma", None) is None
        assert registry.get("alpha")() == "a"

    def test_unknown_name_lists_available(self):
        registry = self.make()
        with pytest.raises(KeyError, match="unknown widget 'gamma'.*alpha, beta"):
            registry.get("gamma")

    def test_near_miss_gets_a_suggestion(self):
        registry = self.make()
        with pytest.raises(KeyError, match="did you mean 'alpha'"):
            registry.get("alpah")

    def test_duplicate_registration_rejected(self):
        registry = self.make()
        with pytest.raises(ValueError, match="widget 'alpha' is already registered"):
            registry.register("alpha", lambda: "again")

    def test_metadata_and_summary(self):
        registry = self.make()
        assert registry.metadata("alpha") == {"colour": "red"}
        assert registry.entry("beta").summary == "A beta widget."
        names = [entry.name for entry in registry.list()]
        assert names == ["alpha", "beta"]

    def test_unregister(self):
        registry = self.make()
        registry.unregister("alpha")
        assert "alpha" not in registry


FULL_SPEC = ExperimentSpec(
    name="custom",
    scenario="rush_hour",
    manager="rtm",
    platform="jetson_nano",
    seed=7,
    policy="min_latency",
    policy_overrides={"dnn2": "min_energy"},
    rtm={"enable_dvfs": False, "decision_interval_ms": 250.0},
    simulator={"decision_interval_ms": 250.0, "max_backlog": 3},
    use_op_cache=False,
)


class TestSpecRoundTrip:
    @pytest.mark.parametrize(
        "spec",
        [ExperimentSpec(scenario="steady"), FULL_SPEC],
        ids=["minimal", "full"],
    )
    def test_dict_round_trip(self, spec):
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("suffix", [".toml", ".json"])
    def test_file_round_trip(self, tmp_path, suffix):
        path = tmp_path / f"spec{suffix}"
        FULL_SPEC.save(path)
        assert ExperimentSpec.load(path) == FULL_SPEC

    def test_batch_round_trip(self, tmp_path):
        specs = [FULL_SPEC, ExperimentSpec(scenario="steady"), ExperimentSpec(scenario="bursty")]
        for suffix in (".toml", ".json"):
            path = tmp_path / f"batch{suffix}"
            dump_specs(specs, path)
            assert load_specs(path) == specs

    def test_load_rejects_batch_file_for_single_loader(self, tmp_path):
        path = tmp_path / "batch.toml"
        dump_specs([FULL_SPEC, ExperimentSpec(scenario="steady")], path)
        with pytest.raises(SpecError, match="holds 2 experiments"):
            ExperimentSpec.load(path)

    def test_tuple_params_round_trip_as_lists(self, tmp_path):
        # Tuples are normalised to lists (the JSON/TOML-canonical form) at
        # construction, so a spec built with tuple values compares equal to
        # its reloaded form and shares its spec_id.
        spec = ExperimentSpec(scenario="steady", scenario_params={"fps_range": (3.0, 8.0)})
        assert spec.scenario_params == {"fps_range": [3.0, 8.0]}
        for suffix in (".toml", ".json"):
            path = tmp_path / f"tuples{suffix}"
            dump_specs([spec], path)
            reloaded = load_specs(path)[0]
            assert reloaded == spec
            assert reloaded.spec_id() == spec.spec_id()

    def test_defaults_are_restored_for_omitted_keys(self, tmp_path):
        path = tmp_path / "sparse.toml"
        path.write_text('scenario = "steady"\n')
        spec = ExperimentSpec.load(path)
        assert spec == ExperimentSpec(scenario="steady")
        assert spec.manager == "rtm" and spec.use_op_cache is True

    def test_label_defaults_and_respects_name(self):
        assert ExperimentSpec(scenario="steady", seed=2).label == "steady/rtm/seed2"
        assert FULL_SPEC.label == "custom"


class TestTomlStringEscaping:
    """Regression: ``_toml_value`` used to emit raw control characters.

    A spec whose name held a newline (or tab, carriage return, any
    U+0000-U+001F) serialised to a TOML basic string with the character
    embedded verbatim — invalid TOML that ``tomllib`` refused to parse back,
    breaking save/load round-trips.  Strings must escape per the TOML
    basic-string rules (short escapes where they exist, ``\\uXXXX``
    otherwise).
    """

    def _round_trip(self, tmp_path, name: str) -> ExperimentSpec:
        spec = ExperimentSpec(scenario="steady", name=name)
        path = tmp_path / "spec.toml"
        spec.save(path)
        return ExperimentSpec.load(path)

    def test_newline_in_name_round_trips(self, tmp_path):
        # The original failure mode: "line1\nline2" produced unparseable TOML.
        reloaded = self._round_trip(tmp_path, "line1\nline2")
        assert reloaded.name == "line1\nline2"

    @pytest.mark.parametrize(
        "name",
        ["tab\there", "cr\rhere", "bell\x07", "nul\x00", "del\x7f", 'quote" and \\ slash'],
        ids=["tab", "carriage-return", "bell", "nul", "del", "quote-backslash"],
    )
    def test_control_and_special_chars_round_trip(self, tmp_path, name):
        assert self._round_trip(tmp_path, name).name == name

    def test_hypothesis_arbitrary_strings_round_trip(self, tmp_path):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(
            name=st.text(
                alphabet=st.characters(
                    codec="utf-8", categories=("L", "N", "P", "S", "Z", "Cc")
                ),
                min_size=1,
                max_size=40,
            )
        )
        @settings(max_examples=80, deadline=None)
        def check(name: str) -> None:
            spec = ExperimentSpec(scenario="steady", name=name)
            path = tmp_path / "hypothesis_spec.toml"
            spec.save(path)
            reloaded = ExperimentSpec.load(path)
            assert reloaded.name == name
            assert reloaded.spec_id() == spec.spec_id()

        check()

    def test_control_chars_in_scenario_params_round_trip(self, tmp_path):
        spec = ExperimentSpec(
            scenario="steady", scenario_params={"note": "a\tb\nc"}
        )
        path = tmp_path / "params.toml"
        dump_specs([spec], path)
        assert load_specs(path)[0].scenario_params["note"] == "a\tb\nc"


class TestAtomicSpecWrites:
    """``save``/``dump_specs`` must replace files atomically.

    A crash mid-write used to leave a truncated file at the destination;
    with the same-directory-temp + ``os.replace`` scheme the original
    survives any failure before the final rename.
    """

    def test_failed_save_leaves_original_intact(self, tmp_path, monkeypatch):
        path = tmp_path / "spec.toml"
        ExperimentSpec(scenario="steady").save(path)
        original = path.read_text()

        def exploding_replace(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            ExperimentSpec(scenario="bursty").save(path)
        assert path.read_text() == original
        # The aborted temp file must not linger next to the destination.
        assert [p.name for p in tmp_path.iterdir()] == ["spec.toml"]

    def test_failed_dump_specs_leaves_original_intact(self, tmp_path, monkeypatch):
        path = tmp_path / "batch.toml"
        dump_specs([ExperimentSpec(scenario="steady")], path)
        original = path.read_text()
        monkeypatch.setattr(os, "replace", lambda src, dst: (_ for _ in ()).throw(OSError("boom")))
        with pytest.raises(OSError):
            dump_specs([FULL_SPEC], path)
        assert path.read_text() == original


class TestSpecValidation:
    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(SpecError, match="unknown experiment spec keys \\['senario'\\]"):
            ExperimentSpec.from_dict({"senario": "steady"})

    def test_bad_field_types_rejected(self):
        with pytest.raises(SpecError, match="'seed' must be an integer"):
            ExperimentSpec.from_dict({"scenario": "steady", "seed": "three"})
        with pytest.raises(SpecError, match="'rtm' must be a table"):
            ExperimentSpec.from_dict({"scenario": "steady", "rtm": ["enable_dvfs"]})

    def test_unknown_registry_names_rejected_with_suggestion(self):
        with pytest.raises(SpecError, match="unknown scenario 'rush_our'.*did you mean 'rush_hour'"):
            ExperimentSpec(scenario="rush_our").validate()
        with pytest.raises(SpecError, match="unknown manager"):
            ExperimentSpec(scenario="steady", manager="rtmm").validate()
        with pytest.raises(SpecError, match="unknown platform preset"):
            ExperimentSpec(scenario="steady", platform="pixel9000").validate()
        with pytest.raises(SpecError, match="unknown policy"):
            ExperimentSpec(scenario="steady", policy="min_enrgy").validate()

    def test_unknown_override_fields_rejected(self):
        with pytest.raises(SpecError, match="unknown rtm override keys \\['enable_warp'\\]"):
            ExperimentSpec(scenario="steady", rtm={"enable_warp": True}).validate()
        with pytest.raises(SpecError, match="unknown simulator override keys"):
            ExperimentSpec(scenario="steady", simulator={"tick": 1.0}).validate()

    def test_baselines_reject_rtm_overrides(self):
        with pytest.raises(SpecError, match="not configurable"):
            ExperimentSpec(
                scenario="steady", manager="governor_only", rtm={"enable_dvfs": False}
            ).validate()

    def test_valid_spec_passes_and_chains(self):
        assert FULL_SPEC.validate() is FULL_SPEC


class TestSpecId:
    def test_equal_specs_share_an_id(self):
        a = ExperimentSpec(scenario="steady", seed=1)
        b = ExperimentSpec(scenario="steady", seed=1)
        assert a.spec_id() == b.spec_id()

    def test_any_field_change_changes_the_id(self):
        base = ExperimentSpec(scenario="steady")
        variants = [
            ExperimentSpec(scenario="bursty"),
            ExperimentSpec(scenario="steady", seed=1),
            ExperimentSpec(scenario="steady", manager="governor_only"),
            ExperimentSpec(scenario="steady", platform="jetson_nano"),
            ExperimentSpec(scenario="steady", rtm={"enable_dvfs": False}),
            ExperimentSpec(scenario="steady", use_op_cache=False),
        ]
        ids = {spec.spec_id() for spec in [base, *variants]}
        assert len(ids) == len(variants) + 1

    def test_spec_id_is_stable_across_process_boundaries(self):
        """The content hash must not depend on the Python hash seed or process."""
        spec = FULL_SPEC
        code = (
            "import json, sys\n"
            "from repro.experiments import ExperimentSpec\n"
            "spec = ExperimentSpec.from_dict(json.load(sys.stdin))\n"
            "print(spec.spec_id())\n"
        )
        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        env = {**os.environ, "PYTHONHASHSEED": "12345"}
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", code],
            input=json.dumps(spec.to_dict()),
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert result.stdout.strip() == spec.spec_id()


#: Spec-driven golden pairs: one per manager, including the pair the
#: acceptance criterion names (rush_hour x rtm).
GOLDEN_SPEC_PAIRS = [
    ("rush_hour", "rtm"),
    ("steady", "governor_only"),
    ("fig2", "rtm_min_energy"),
    ("single_dnn", "static_deployment"),
]


class TestSpecExecution:
    @pytest.mark.parametrize("scenario,manager", GOLDEN_SPEC_PAIRS)
    def test_run_reproduces_golden_fingerprints(self, scenario, manager):
        result = run(ExperimentSpec(scenario=scenario, manager=manager, seed=0))
        assert result.trace.fingerprint() == GOLDEN_FINGERPRINTS[(scenario, manager)]

    def test_spec_run_is_bit_identical_to_the_legacy_sweep_path(self, registry_grid_cached):
        """Acceptance: run(spec) of rush_hour x rtm == the SweepCase path."""
        spec_trace = run(ExperimentSpec(scenario="rush_hour", manager="rtm", seed=0)).trace
        legacy_trace = registry_grid_cached.traces["rush_hour/rtm/seed0"]
        assert spec_trace.fingerprint() == legacy_trace.fingerprint()

    def test_sweep_case_to_spec_round_trip(self):
        case = SweepCase(
            name="x", scenario="steady", manager="rtm", seed=4,
            platform_name="jetson_nano", use_op_cache=False,
        )
        spec = case.to_spec()
        assert spec.label == "x"
        assert (spec.scenario, spec.manager, spec.seed) == ("steady", "rtm", 4)
        assert spec.platform == "jetson_nano" and spec.use_op_cache is False
        config = SimulatorConfig(decision_interval_ms=125.0)
        assert case.to_spec(config).simulator["decision_interval_ms"] == 125.0

    def test_sweep_case_with_callables_does_not_convert(self):
        case = SweepCase(name="x", scenario=lambda: None, manager="rtm")
        with pytest.raises(ValueError, match="callable scenario/manager factories"):
            case.to_spec()

    def test_rtm_policy_and_overrides_reach_the_manager(self):
        from repro.experiments import build_manager_from_spec
        from repro.rtm import MinEnergyUnderConstraints, MinLatencyUnderPowerCap

        manager = build_manager_from_spec(
            ExperimentSpec(
                scenario="fig2",
                policy="min_latency",
                policy_overrides={"dnn2": "min_energy"},
                rtm={"enable_dnn_scaling": False, "decision_interval_ms": 125.0},
            )
        )
        assert isinstance(manager.policy, MinLatencyUnderPowerCap)
        assert manager.config.enable_dnn_scaling is False
        assert manager.config.decision_interval_ms == 125.0
        assert isinstance(
            manager.allocator.policy_overrides["dnn2"], MinEnergyUnderConstraints
        )

    def test_scenario_params_reach_the_builder(self):
        result = run(
            ExperimentSpec(scenario="single_dnn", scenario_params={"duration_ms": 4000.0})
        )
        assert result.trace.duration_ms == 4000.0

    def test_scenario_params_override_generator_defaults(self):
        result = run(
            ExperimentSpec(scenario="steady", scenario_params={"duration_ms": 5000.0})
        )
        assert result.trace.duration_ms == 5000.0

    def test_scenario_params_rejected_when_the_builder_takes_none(self):
        # rush_hour is hand-written and takes no extra parameters; validate()
        # must refuse up front instead of failing deep inside a worker.
        with pytest.raises(SpecError, match="'rush_hour' does not accept scenario_params"):
            ExperimentSpec(
                scenario="rush_hour", scenario_params={"duration_ms": 1000.0}
            ).validate()

    def test_misspelled_generator_param_rejected_up_front(self):
        # The generator-backed builders declare their accepted params in the
        # registry metadata, so a typo fails validation (exit 2 in the CLI)
        # rather than as a TypeError inside a worker.
        with pytest.raises(SpecError, match="does not accept scenario_params \\['duratoin_ms'\\]"):
            ExperimentSpec(
                scenario="steady", scenario_params={"duratoin_ms": 500.0}
            ).validate()

    def test_wrong_typed_overrides_rejected(self):
        with pytest.raises(SpecError, match="'enable_dvfs' must be a bool"):
            ExperimentSpec(scenario="steady", rtm={"enable_dvfs": "false"}).validate()
        with pytest.raises(SpecError, match="'decision_interval_ms' must be a float"):
            ExperimentSpec(
                scenario="steady", simulator={"decision_interval_ms": "250"}
            ).validate()
        with pytest.raises(SpecError, match="'max_backlog' must be a int"):
            ExperimentSpec(scenario="steady", simulator={"max_backlog": 2.5}).validate()
        # Ints are acceptable for float fields.
        ExperimentSpec(scenario="steady", simulator={"decision_interval_ms": 250}).validate()

    def test_simulator_overrides_are_applied(self):
        fast = run(
            ExperimentSpec(scenario="single_dnn", simulator={"decision_interval_ms": 250.0})
        ).trace
        slow = run(ExperimentSpec(scenario="single_dnn")).trace
        assert len(fast.decisions) > len(slow.decisions)

    def test_cached_and_uncached_specs_are_bit_identical(self):
        cached = run(ExperimentSpec(scenario="single_dnn", use_op_cache=True)).trace
        uncached = run(ExperimentSpec(scenario="single_dnn", use_op_cache=False)).trace
        assert cached.fingerprint() == uncached.fingerprint()
        assert cached.cache_counters()["hits"] > 0
        assert uncached.cache_counters() == {"hits": 0, "misses": 0}

    def test_run_validates_by_default(self):
        with pytest.raises(SpecError, match="unknown scenario"):
            run(ExperimentSpec(scenario="nope"))


class TestRunMany:
    def test_rejects_duplicate_labels(self):
        spec = ExperimentSpec(scenario="steady")
        with pytest.raises(ValueError, match="duplicate experiment labels"):
            run_many([spec, spec])

    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError, match="workers"):
            run_many([ExperimentSpec(scenario="steady")], workers=0)

    def test_errors_are_captured_per_spec(self):
        specs = [
            ExperimentSpec(name="bad", scenario="steady", platform="not_a_platform"),
            ExperimentSpec(scenario="single_dnn"),
        ]
        batch = run_many(specs, validate=False)
        assert "unknown platform preset" in batch.errors["bad"]
        assert list(batch.traces) == ["single_dnn/rtm/seed0"]

    def test_spec_file_replay_is_worker_count_independent(self, tmp_path):
        """Acceptance: a sweep from a spec file re-runs identically on 1 and N workers."""
        path = tmp_path / "sweep.toml"
        dump_specs(grid_specs(["single_dnn", "steady"], ["rtm", "governor_only"], [0]), path)

        first = run_many(load_specs(path), workers=1)
        second = run_many(load_specs(path), workers=2)
        assert not first.errors and not second.errors
        assert list(first.traces) == list(second.traces)
        fingerprints_one = {k: t.fingerprint() for k, t in first.traces.items()}
        fingerprints_two = {k: t.fingerprint() for k, t in second.traces.items()}
        assert fingerprints_one == fingerprints_two
        assert first.violation_rates() == second.violation_rates()
        assert first.energies_mj() == second.energies_mj()
        assert first.mean_accuracies() == second.mean_accuracies()
        assert first.best_case() == second.best_case()

    def test_grid_specs_labels(self):
        specs = grid_specs(["steady"], ["rtm", "governor_only"], [0, 1])
        assert [spec.label for spec in specs] == [
            "steady/rtm/seed0",
            "steady/rtm/seed1",
            "steady/governor_only/seed0",
            "steady/governor_only/seed1",
        ]


class TestCommittedExampleSpecs:
    EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "specs"

    @pytest.mark.parametrize("filename", ["fig2_managers.toml", "rush_hour_rtm.toml"])
    def test_committed_spec_files_load_and_validate(self, filename):
        specs = load_specs(self.EXAMPLES / filename)
        assert specs
        for spec in specs:
            spec.validate()
