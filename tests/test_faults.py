"""Tests for the deterministic fault-injection subsystem and chaos harness.

Covers the declarative :class:`~repro.sim.faults.FaultPlan` (TOML/JSON/dict
round trips, spec integration, content hashing), the seeded transient
job-crash model, graceful degradation under core loss (the RTM remaps and
keeps meeting requirements where static baselines keep dropping jobs),
equal-time event ordering, bit-identical fingerprints across all three
execution backends on chaos specs, and the crash-tolerant process-pool
harness: SIGKILL-ed workers, the per-spec timeout watchdog, retries, and
store-backed resume of failed specs.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import time

import pytest

import repro.experiments.runner as runner_module
from repro.experiments import ExperimentSpec, grid_specs, run, run_many
from repro.sim.faults import (
    FAULT_EVENT_KINDS,
    CoreFailure,
    CoreRecovery,
    FaultPlan,
    FaultPlanError,
    FrequencyCap,
    JobCrashProfile,
    SensorBias,
    crash_roll,
    fault_event_from_dict,
)
from repro.store import ResultsStore
from repro.workloads import build_scenario

PLAN_TOML = """
[[events]]
kind = "core_failure"
time_ms = 8000.0
cluster = "a15"
cores = 2

[[events]]
kind = "core_recovery"
time_ms = 16000.0
cluster = "a15"
cores = 2

[job_crashes]
probability = 0.05
seed = 7
max_retries = 2
"""


def _reference_plan() -> FaultPlan:
    return FaultPlan(
        events=(
            CoreFailure(time_ms=8000.0, cluster="a15", cores=2),
            CoreRecovery(time_ms=16000.0, cluster="a15", cores=2),
        ),
        job_crashes=JobCrashProfile(probability=0.05, seed=7, max_retries=2),
    )


# --------------------------------------------------------------- plan formats


class TestFaultPlanRoundTrips:
    def test_toml_round_trip(self, tmp_path):
        path = tmp_path / "plan.toml"
        path.write_text(PLAN_TOML)
        plan = FaultPlan.from_file(path)
        assert plan == _reference_plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(_reference_plan().to_dict()))
        assert FaultPlan.from_file(path) == _reference_plan()

    def test_content_key_stable_across_load_paths(self, tmp_path):
        toml_path = tmp_path / "plan.toml"
        toml_path.write_text(PLAN_TOML)
        json_path = tmp_path / "plan.json"
        json_path.write_text(json.dumps(_reference_plan().to_dict()))
        assert (
            FaultPlan.from_file(toml_path).content_key()
            == FaultPlan.from_file(json_path).content_key()
            == _reference_plan().content_key()
        )

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(FaultPlanError):
            fault_event_from_dict({"kind": "meteor_strike", "time_ms": 1.0})
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"events": [{"kind": "nope", "time_ms": 1.0}]})

    def test_every_registered_kind_round_trips(self):
        samples = {
            "core_failure": {"time_ms": 5.0, "cluster": "a15", "cores": 2},
            "core_recovery": {"time_ms": 6.0, "cluster": "a15", "cores": 2},
            "freq_cap": {"time_ms": 7.0, "cluster": "a15", "max_frequency_mhz": 1200.0},
            "freq_cap_release": {"time_ms": 8.0, "cluster": "a15"},
            "sensor_bias": {"time_ms": 9.0, "bias_c": -4.0},
            "sensor_dropout": {"time_ms": 10.0},
            "sensor_restore": {"time_ms": 11.0},
        }
        assert set(samples) == set(FAULT_EVENT_KINDS), "keep samples exhaustive"
        for kind, payload in samples.items():
            event = fault_event_from_dict({"kind": kind, **payload})
            assert event.kind == kind
            assert fault_event_from_dict(event.to_dict()) == event

    def test_describe_is_human_readable(self):
        text = _reference_plan().describe()
        assert "core_failure" in text
        assert "core_recovery" in text


class TestSpecIntegration:
    def test_fault_free_spec_ids_unchanged(self):
        spec = ExperimentSpec(scenario="steady", manager="rtm")
        assert "faults" not in spec.to_dict()
        assert spec.spec_id() == ExperimentSpec(scenario="steady", manager="rtm", faults={}).spec_id()

    def test_faults_change_the_spec_id(self):
        base = ExperimentSpec(scenario="steady", manager="rtm")
        faulted = dataclasses.replace(base, faults=_reference_plan().to_dict())
        assert faulted.spec_id() != base.spec_id()
        # And the dict form round-trips through validation.
        faulted.validate()
        assert ExperimentSpec.from_dict(faulted.to_dict()) == faulted

    def test_invalid_faults_table_rejected_by_validate(self):
        spec = ExperimentSpec(
            scenario="steady", manager="rtm", faults={"events": [{"kind": "nope"}]}
        )
        with pytest.raises(Exception):
            spec.validate()


# --------------------------------------------------------------- crash model


class TestCrashModel:
    def test_crash_roll_is_a_pure_deterministic_hash(self):
        draws = {crash_roll(3, "dnn1", 17, attempt) for attempt in range(4)}
        assert len(draws) == 4  # varies with attempt
        for draw in draws:
            assert 0.0 <= draw < 1.0
        assert crash_roll(3, "dnn1", 17, 0) == crash_roll(3, "dnn1", 17, 0)
        assert crash_roll(3, "dnn1", 17, 0) != crash_roll(4, "dnn1", 17, 0)

    def test_profile_round_trip_and_backoff(self):
        profile = JobCrashProfile(probability=0.3, seed=11, max_retries=3)
        assert JobCrashProfile.from_dict(profile.to_dict()) == profile
        assert profile.backoff_ms(0) < profile.backoff_ms(1) <= profile.backoff_ms(5)

    def test_crashes_are_backend_independent_state(self):
        profile = JobCrashProfile(probability=0.5, seed=0, max_retries=1)
        outcomes = [profile.crashes_before_success("dnn1", index) for index in range(64)]
        assert outcomes == [
            profile.crashes_before_success("dnn1", index) for index in range(64)
        ]
        assert any(outcome is None for outcome in outcomes)  # some jobs lost
        assert any(outcome == 0 for outcome in outcomes)  # some succeed at once


# ----------------------------------------------- determinism and degradation


class TestChaosDeterminism:
    def test_same_spec_same_fingerprint(self):
        spec = ExperimentSpec(scenario="chaos_rush_hour_core_failure", manager="rtm")
        assert run(spec).trace.fingerprint() == run(spec).trace.fingerprint()

    def test_equal_time_fault_events_order_independent(self):
        # Two fault events at the same instant: the engine orders them by
        # (time_ms, kind), so the plan's listing order must not matter.
        events = [
            {"kind": "core_failure", "time_ms": 8000.0, "cluster": "a15", "cores": 1},
            {
                "kind": "freq_cap",
                "time_ms": 8000.0,
                "cluster": "a15",
                "max_frequency_mhz": 1400.0,
            },
        ]
        base = ExperimentSpec(scenario="rush_hour", manager="rtm")
        forward = dataclasses.replace(base, faults={"events": events})
        backward = dataclasses.replace(base, faults={"events": events[::-1]})
        assert run(forward).trace.fingerprint() == run(backward).trace.fingerprint()

    def test_scenario_events_stable_under_application_permutation(self):
        scenario = build_scenario("rush_hour", seed=0)
        permuted = dataclasses.replace(
            scenario, applications=tuple(reversed(scenario.applications))
        )
        assert permuted.events() == scenario.events()

    def test_fault_records_in_trace_and_fingerprint(self):
        spec = ExperimentSpec(scenario="chaos_rush_hour_core_failure", manager="rtm")
        trace = run(spec).trace
        assert trace.faults_of_kind("core_failure")
        assert trace.faults_of_kind("core_recovery")
        times = [fault.time_ms for fault in trace.faults]
        assert times == sorted(times)
        # The fault-free sibling has a different fingerprint.
        fault_free = run(ExperimentSpec(scenario="rush_hour", manager="rtm")).trace
        assert trace.fingerprint() != fault_free.fingerprint()


class TestGracefulDegradation:
    def test_rtm_degrades_where_static_baseline_drops(self):
        rtm = run(
            ExperimentSpec(scenario="chaos_rush_hour_core_failure", manager="rtm")
        ).trace
        governor = run(
            ExperimentSpec(
                scenario="chaos_rush_hour_core_failure", manager="governor_only"
            )
        ).trace
        # The RTM observes the core loss through its monitors, invalidates
        # the cache and remaps; the governor baseline cannot, so it keeps
        # releasing jobs onto the crippled mapping.
        assert rtm.violation_rate() < governor.violation_rate()

    def test_dead_cluster_jobs_dropped_with_cores_offline_reason(self):
        trace = run(
            ExperimentSpec(scenario="chaos_flaky_npu", manager="governor_only")
        ).trace
        offline_drops = [
            job for job in trace.jobs if job.dropped and "cores_offline" in job.violations
        ]
        assert offline_drops, "dead-cluster jobs must degrade, not crash"

    def test_transient_crashes_retry_and_account(self):
        trace = run(
            ExperimentSpec(scenario="chaos_bursty_transient_crashes", manager="rtm")
        ).trace
        crashes = trace.faults_of_kind("job_crash")
        assert crashes
        # Lost jobs (every retry crashed) are dropped with reason "crashed".
        lost = trace.faults_of_kind("job_lost")
        assert len(trace.crashed_jobs()) == len(lost)
        # At least one crashed attempt was retried into a success: more
        # distinct crashed jobs than lost jobs.
        crashed_jobs = {(fault.target, fault.detail) for fault in crashes}
        lost_jobs = {(fault.target, fault.detail) for fault in lost}
        assert lost_jobs <= crashed_jobs
        assert crashed_jobs - lost_jobs, "some crashes must recover via retry"


class TestBackendParity:
    def test_chaos_fingerprints_identical_across_backends(self):
        specs = [
            ExperimentSpec(scenario="chaos_double_fault", manager="rtm"),
            ExperimentSpec(scenario="chaos_bursty_transient_crashes", manager="rtm"),
        ]
        serial = run_many(specs, backend="serial")
        batched = run_many(specs, backend="batched")
        process = run_many(specs, backend="process", workers=2)
        assert not serial.errors and not batched.errors and not process.errors
        for label in serial.results:
            fingerprint = serial.results[label].trace.fingerprint()
            assert batched.results[label].trace.fingerprint() == fingerprint
            assert process.results[label].trace.fingerprint() == fingerprint


# ------------------------------------------------- crash-tolerant harness


HARNESS_SPECS = grid_specs(["steady"], ["rtm"], seeds=[0, 1, 2])

#: Behaviour switchboard of ``_harness_run_one_timed``.  The process pool
#: pickles submitted functions *by reference*, so the misbehaving worker
#: entry point must be module-level; its behaviour is steered through this
#: dict, which ``fork``-started workers inherit from the parent.
_HOOK: dict = {"kill_label": None, "kill_sentinel": None, "sleep_label": None}

_ORIGINAL_RUN_ONE_TIMED = runner_module._run_one_timed


def _harness_run_one_timed(spec):
    """Worker entry point that can SIGKILL itself or hang, per ``_HOOK``."""
    label = spec.label
    if label == _HOOK["sleep_label"]:  # pragma: no cover - reaped by watchdog
        time.sleep(120.0)
    if label == _HOOK["kill_label"]:
        sentinel = _HOOK["kill_sentinel"]
        if sentinel is None:
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover
        if not os.path.exists(sentinel):
            with open(sentinel, "w"):
                pass
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover
    return _ORIGINAL_RUN_ONE_TIMED(spec)


class TestProcessPoolCrashTolerance:
    """The process backend under worker death, hangs, and retries.

    The pool uses the ``fork`` start method on Linux, so worker processes
    inherit the parent's monkeypatched ``_run_one_timed`` — the tests steer
    worker behaviour (SIGKILL, sleeps) without any code in the product.
    """

    @pytest.fixture(autouse=True)
    def _reset_hook(self, monkeypatch):
        for key in _HOOK:
            monkeypatch.setitem(_HOOK, key, None)
        monkeypatch.setattr(runner_module, "_run_one_timed", _harness_run_one_timed)

    def test_sigkilled_worker_resubmitted_on_fresh_pool(self, tmp_path, monkeypatch):
        monkeypatch.setitem(_HOOK, "kill_label", "steady/rtm/seed1")
        monkeypatch.setitem(_HOOK, "kill_sentinel", str(tmp_path / "killed-once"))
        batch = run_many(HARNESS_SPECS, backend="process", workers=2)
        assert not batch.errors
        assert set(batch.results) == {spec.label for spec in HARNESS_SPECS}
        reference = run_many(HARNESS_SPECS, backend="serial")
        for label in reference.results:
            assert (
                batch.results[label].trace.fingerprint()
                == reference.results[label].trace.fingerprint()
            )

    def test_unrecoverable_crash_is_a_per_spec_error_and_resumes(
        self, tmp_path, monkeypatch
    ):
        store_path = tmp_path / "results.db"
        monkeypatch.setitem(_HOOK, "kill_label", "steady/rtm/seed1")
        with ResultsStore(store_path) as store:
            batch = run_many(
                HARNESS_SPECS, backend="process", workers=2, store=store
            )
            assert batch.errors, "a spec that kills its worker twice must surface"
            assert "steady/rtm/seed1" in batch.errors
            store.flush()
            stored_errors = {error.label for error in store.errors()}
            failed = set(batch.errors)
            assert failed <= stored_errors
            completed_before = set(store.ids())

        # Resume with the crash fixed: only the failed specs recompute, and
        # the store converges on the same digest as a clean serial run.
        monkeypatch.setitem(_HOOK, "kill_label", None)
        with ResultsStore(store_path) as store:
            resumed = run_many(
                HARNESS_SPECS, backend="process", workers=2, store=store, resume=True
            )
            assert not resumed.errors
            assert set(resumed.results) == failed
            assert set(resumed.skipped) == {
                spec.label
                for spec in HARNESS_SPECS
                if spec.spec_id() in completed_before
            }
            store.flush()
            assert not store.errors(), "success must resolve the stored error rows"
            reference = run_many(HARNESS_SPECS, backend="serial")
            spec_ids = [spec.spec_id() for spec in HARNESS_SPECS]
            digest = store.fingerprint_digest(spec_ids)
            with ResultsStore(tmp_path / "clean.db") as clean:
                for label, result in reference.results.items():
                    clean.put_result(result)
                clean.flush()
                assert clean.fingerprint_digest(spec_ids) == digest

    def test_spec_timeout_watchdog_abandons_hung_workers(self, monkeypatch):
        monkeypatch.setitem(_HOOK, "sleep_label", "steady/rtm/seed1")
        start = time.monotonic()
        batch = run_many(
            HARNESS_SPECS, backend="process", workers=2, spec_timeout=3.0
        )
        elapsed = time.monotonic() - start
        assert elapsed < 60.0, "the watchdog must not wait for the sleeper"
        assert "steady/rtm/seed1" in batch.errors
        assert "TimeoutError" in batch.errors["steady/rtm/seed1"]
        assert set(batch.results) == {"steady/rtm/seed0", "steady/rtm/seed2"}

    def test_retries_rerun_only_failed_specs(self, monkeypatch):
        calls = []
        original = runner_module._run_one

        def flaky(spec):
            calls.append(spec.label)
            if spec.label.endswith("seed1") and calls.count(spec.label) == 1:
                raise RuntimeError("transient infrastructure failure")
            return original(spec)

        monkeypatch.setattr(runner_module, "_run_one", flaky)
        batch = run_many(HARNESS_SPECS, backend="serial", retries=1)
        assert not batch.errors
        assert set(batch.results) == {spec.label for spec in HARNESS_SPECS}
        # seed0/seed2 ran once; seed1 ran twice (initial failure + retry).
        assert calls.count("steady/rtm/seed0") == 1
        assert calls.count("steady/rtm/seed1") == 2
        assert calls.count("steady/rtm/seed2") == 1

    def test_failure_messages_carry_truncated_tracebacks(self, monkeypatch):
        def explodes(spec):
            raise RuntimeError("boom with context")

        monkeypatch.setattr(runner_module, "_run_one", explodes)
        batch = run_many(HARNESS_SPECS[:1], backend="serial")
        message = batch.errors["steady/rtm/seed0"]
        first_line, _, rest = message.partition("\n")
        assert first_line == "RuntimeError: boom with context"
        assert "explodes" in rest  # the traceback names the failing frame
        assert len(message) < 3000
