"""Fleet orchestration tests: specs, invariants, goldens, policy quality.

The heart of the file is the module-scoped ``fleet_grid`` fixture — one
batched fleet run per (scenario, policy) combination on small pinned device
mixes — shared by the conservation invariant, the golden fleet fingerprint
table, the orchestrated-beats-static assertion and the migration checks.
Backend and device-order identity get their own (serial / permuted) runs.

Regenerate the golden table after an intentional behaviour change with::

    PYTHONPATH=src python -m tests.test_fleet
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.cli import main
from repro.fleet import (
    FLEET_POLICY_REGISTRY,
    FleetSpec,
    FleetSpecError,
    DeviceTelemetry,
    build_fleet_scenario,
    compare_fleet_bench,
    dump_fleet_specs,
    fleet_specs_to_toml,
    load_fleet_specs,
    make_fleet_policy,
    run_fleet,
)
from repro.fleet.bench import bench_device_mix
from repro.fleet.orchestrator import FleetResult

#: Small pinned device mixes: big enough for placement to matter, small
#: enough that the whole grid stays test-suite friendly.
SMALL_MIXES: Dict[str, Dict[str, int]] = {
    "fleet_rush_hour_regional": {"generic_quad": 6, "odroid_xu3": 6},
    "fleet_device_churn": {"generic_quad": 4, "odroid_xu3": 4},
    "fleet_stragglers": {"generic_quad": 4, "jetson_nano": 2},
    "fleet_mixed_platforms": {"generic_quad": 2, "jetson_nano": 2, "odroid_xu3": 2},
    "fleet_diurnal": {"generic_quad": 4, "odroid_xu3": 4},
}

GRID_POLICIES = ("static", "least_loaded")

# Golden fleet fingerprints of the grid above (seed 0, batched backend).  A
# changed digest means fleet *behaviour* changed — placement, migration
# timing, per-device simulation — and must be deliberate, exactly like
# tests/test_golden_traces.py.  Regenerate with the module's __main__ hook.
GOLDEN_FLEET_FINGERPRINTS: Dict[Tuple[str, str], str] = {
    ("fleet_device_churn", "least_loaded"): "04355d6ba672e4cd",
    ("fleet_device_churn", "static"): "627f7d23b9bc4039",
    ("fleet_diurnal", "least_loaded"): "7233d7e898056018",
    ("fleet_diurnal", "static"): "37195436c2b84ade",
    ("fleet_mixed_platforms", "least_loaded"): "90c6165e479cea91",
    ("fleet_mixed_platforms", "static"): "2459660fbb0946c6",
    ("fleet_rush_hour_regional", "least_loaded"): "6daad25fdebdfa3a",
    ("fleet_rush_hour_regional", "static"): "6daf92538a383b5e",
    ("fleet_stragglers", "least_loaded"): "28328ebfbbcc5c99",
    ("fleet_stragglers", "static"): "d297648783108c69",
}


@pytest.fixture(scope="module")
def fleet_grid(trained_dnn) -> Dict[Tuple[str, str], FleetResult]:
    """One batched fleet run per (scenario, policy) on the pinned mixes."""
    results: Dict[Tuple[str, str], FleetResult] = {}
    for scenario, mix in sorted(SMALL_MIXES.items()):
        for policy in GRID_POLICIES:
            spec = FleetSpec(scenario=scenario, policy=policy, devices=mix)
            results[(scenario, policy)] = run_fleet(
                spec, backend="batched", trained=trained_dnn
            )
    return results


# ------------------------------------------------------------------- specs


class TestFleetSpec:
    def test_toml_round_trip(self, tmp_path):
        spec = FleetSpec(
            scenario="fleet_rush_hour_regional",
            policy="thermal_headroom",
            seed=3,
            devices={"odroid_xu3": 4, "generic_quad": 2},
            epoch_ms=500.0,
            policy_params={},
        )
        path = tmp_path / "fleet.toml"
        spec.save(path)
        assert load_fleet_specs(path) == [spec]

    def test_json_round_trip(self, tmp_path):
        spec = FleetSpec(scenario="fleet_stragglers", name="straggler_case")
        path = tmp_path / "fleet.json"
        spec.save(path)
        loaded = load_fleet_specs(path)
        assert loaded == [spec]
        assert loaded[0].label == "straggler_case"

    def test_batch_round_trip_preserves_order(self, tmp_path):
        specs = [
            FleetSpec(scenario="fleet_device_churn", policy="static"),
            FleetSpec(scenario="fleet_device_churn", policy="least_loaded"),
        ]
        path = tmp_path / "batch.toml"
        dump_fleet_specs(specs, path)
        assert "[[fleet]]" in path.read_text()
        assert load_fleet_specs(path) == specs

    def test_fleet_id_ignores_device_insertion_order(self):
        forward = FleetSpec(
            scenario="fleet_mixed_platforms",
            devices={"generic_quad": 2, "odroid_xu3": 3},
        )
        backward = FleetSpec(
            scenario="fleet_mixed_platforms",
            devices={"odroid_xu3": 3, "generic_quad": 2},
        )
        assert forward.fleet_id() == backward.fleet_id()

    def test_fleet_id_sees_every_field(self):
        base = FleetSpec(scenario="fleet_stragglers")
        assert base.fleet_id() != FleetSpec(scenario="fleet_stragglers", seed=1).fleet_id()
        assert (
            base.fleet_id()
            != FleetSpec(scenario="fleet_stragglers", epoch_ms=2000.0).fleet_id()
        )

    def test_unknown_keys_rejected(self):
        with pytest.raises(FleetSpecError, match="unknown fleet spec keys"):
            FleetSpec.from_dict({"scenario": "fleet_stragglers", "epoch": 5})

    def test_validate_suggests_for_typos(self):
        with pytest.raises(FleetSpecError, match="least_loaded"):
            FleetSpec(scenario="fleet_stragglers", policy="least_loded").validate()
        with pytest.raises(FleetSpecError):
            FleetSpec(scenario="fleet_stragglerz").validate()

    def test_bad_shapes_rejected(self):
        with pytest.raises(FleetSpecError, match="positive integer"):
            FleetSpec.from_dict(
                {"scenario": "fleet_stragglers", "devices": {"odroid_xu3": 0}}
            )
        with pytest.raises(FleetSpecError, match="epoch_ms"):
            FleetSpec.from_dict({"scenario": "fleet_stragglers", "epoch_ms": -1.0})

    def test_single_spec_toml_has_no_header(self):
        text = fleet_specs_to_toml([FleetSpec(scenario="fleet_stragglers")])
        assert "[[fleet]]" not in text
        assert 'scenario = "fleet_stragglers"' in text


# ---------------------------------------------------------------- policies


def _telemetry(device_id: str, **overrides) -> DeviceTelemetry:
    payload = dict(
        device_id=device_id,
        preset="generic_quad",
        time_ms=0.0,
        assigned_apps=0,
        online_cores=4,
        total_cores=4,
        utilisation=0.0,
        thermal_headroom_c=20.0,
        recent_violation_rate=0.0,
        recent_jobs=0,
    )
    payload.update(overrides)
    return DeviceTelemetry(**payload)


class TestPolicies:
    def test_registry_holds_all_five(self):
        assert set(FLEET_POLICY_REGISTRY.names()) == {
            "static",
            "round_robin",
            "least_loaded",
            "thermal_headroom",
            "random",
        }

    def test_static_hashes_over_the_full_table_and_never_rebalances(self):
        policy = make_fleet_policy("static")
        policy.bind(["a", "b", "c"])
        assert policy.rebalances is False
        first = policy.place("app-1", [])
        assert first in {"a", "b", "c"}
        assert policy.place("app-1", []) == first  # pure content hash

    def test_round_robin_cycles_candidates(self):
        policy = make_fleet_policy("round_robin")
        policy.bind(["a", "b"])
        candidates = [_telemetry("a"), _telemetry("b")]
        placed = [policy.place(f"app-{i}", candidates) for i in range(4)]
        assert placed == ["a", "b", "a", "b"]

    def test_least_loaded_prefers_low_load_and_breaks_ties_on_id(self):
        policy = make_fleet_policy("least_loaded")
        policy.bind(["a", "b", "c"])
        candidates = [
            _telemetry("a", assigned_apps=2),
            _telemetry("b", assigned_apps=1),
            _telemetry("c", assigned_apps=1),
        ]
        assert policy.place("app", candidates) == "b"

    def test_thermal_headroom_ranks_occupancy_then_coolness(self):
        policy = make_fleet_policy("thermal_headroom")
        policy.bind(["a", "b", "c"])
        candidates = [
            _telemetry("a", assigned_apps=1, thermal_headroom_c=30.0),
            _telemetry("b", assigned_apps=0, thermal_headroom_c=10.0),
            _telemetry("c", assigned_apps=0, thermal_headroom_c=25.0),
        ]
        assert policy.place("app", candidates) == "c"

    def test_random_is_seeded_and_reset_by_bind(self):
        policy = make_fleet_policy("random", {"seed": 7})
        candidates = [_telemetry(d) for d in ("a", "b", "c", "d")]
        policy.bind([t.device_id for t in candidates])
        first = [policy.place(f"app-{i}", candidates) for i in range(6)]
        policy.bind([t.device_id for t in candidates])
        again = [policy.place(f"app-{i}", candidates) for i in range(6)]
        assert first == again

    def test_empty_candidates_reject(self):
        for name in ("round_robin", "least_loaded", "thermal_headroom", "random"):
            policy = make_fleet_policy(name)
            policy.bind([])
            assert policy.place("app", []) is None

    def test_unknown_policy_suggests(self):
        with pytest.raises(KeyError, match="least_loaded"):
            make_fleet_policy("least_loadedd")


# -------------------------------------------------------------- invariants


class TestFleetInvariants:
    def test_job_conservation(self, fleet_grid):
        """Fleet-wide accounting: every arrival is placed, rejected or gone."""
        for (scenario, policy), result in fleet_grid.items():
            counts = result.app_counts
            assert counts["arrived"] == (
                counts["rejected"]
                + counts["departed"]
                + counts["resident"]
                + counts["in_migration"]
            ), (scenario, policy, counts)
            assert counts["placed"] == counts["arrived"] - counts["rejected"]
            templates = len(build_fleet_scenario(scenario, devices=SMALL_MIXES[scenario]).arrivals)
            assert counts["arrived"] == templates

    def test_device_metrics_sum_to_totals(self, fleet_grid):
        for result in fleet_grid.values():
            assert result.total_jobs() == sum(
                int(m["jobs"]) for m in result.device_metrics.values()
            )
            assert set(result.device_metrics) == set(result.device_ids)

    def test_fingerprint_ignores_device_table_order(self, trained_dnn):
        scenario = "fleet_rush_hour_regional"
        forward = FleetSpec(
            scenario=scenario, devices={"generic_quad": 6, "odroid_xu3": 6}
        )
        backward = FleetSpec(
            scenario=scenario, devices={"odroid_xu3": 6, "generic_quad": 6}
        )
        assert (
            run_fleet(forward, backend="batched", trained=trained_dnn).fingerprint()
            == run_fleet(backward, backend="batched", trained=trained_dnn).fingerprint()
        )

    @pytest.mark.parametrize("scenario", ["fleet_stragglers", "fleet_device_churn"])
    def test_serial_and_batched_backends_agree(self, fleet_grid, trained_dnn, scenario):
        """The fleet digest is bit-identical across execution backends."""
        spec = FleetSpec(
            scenario=scenario, policy="least_loaded", devices=SMALL_MIXES[scenario]
        )
        serial = run_fleet(spec, backend="serial", trained=trained_dnn)
        batched = fleet_grid[(scenario, "least_loaded")]
        assert serial.fingerprint() == batched.fingerprint()
        assert serial.app_counts == batched.app_counts

    def test_migrations_happen_under_faults(self, fleet_grid):
        """Churn evacuates dying devices; the rush overloads and sheds.

        Stragglers, notably, do NOT migrate under ``least_loaded``: the
        per-device RTM absorbs the frequency cap by dropping to cheaper
        operating points, so capped devices never cross the eviction
        threshold — fleet-level eviction only fires where device-level
        adaptation is not enough.
        """
        churn = fleet_grid[("fleet_device_churn", "least_loaded")]
        assert churn.migrations
        assert {record.reason for record in churn.migrations} == {"churn"}
        rush = fleet_grid[("fleet_rush_hour_regional", "least_loaded")]
        assert rush.migrations
        assert "overload" in {record.reason for record in rush.migrations}
        assert not fleet_grid[("fleet_stragglers", "least_loaded")].migrations
        # Static placement never migrates anything, by construction.
        for scenario in SMALL_MIXES:
            assert not fleet_grid[(scenario, "static")].migrations

    def test_migration_arrivals_carry_the_latency_penalty(self, fleet_grid):
        spec_latency = FleetSpec(scenario="fleet_stragglers").migration_latency_ms
        for scenario in ("fleet_device_churn", "fleet_rush_hour_regional"):
            for record in fleet_grid[(scenario, "least_loaded")].migrations:
                assert record.arrival_ms == pytest.approx(record.time_ms + spec_latency)
                assert record.source != record.target


# ------------------------------------------------------- orchestration wins


class TestOrchestrationQuality:
    def test_least_loaded_beats_static_on_rush_hour(self, fleet_grid):
        """The ISSUE's acceptance criterion, asserted deterministically."""
        orchestrated = fleet_grid[("fleet_rush_hour_regional", "least_loaded")]
        static = fleet_grid[("fleet_rush_hour_regional", "static")]
        assert orchestrated.violation_rate() < static.violation_rate()

    def test_least_loaded_beats_static_everywhere(self, fleet_grid):
        for scenario in SMALL_MIXES:
            orchestrated = fleet_grid[(scenario, "least_loaded")]
            static = fleet_grid[(scenario, "static")]
            assert orchestrated.violation_rate() < static.violation_rate(), scenario


# ----------------------------------------------------------------- goldens


class TestGoldenFleetFingerprints:
    def test_every_combination_is_locked(self, fleet_grid):
        observed = {combo: result.fingerprint() for combo, result in fleet_grid.items()}
        assert set(observed) == set(GOLDEN_FLEET_FINGERPRINTS), (
            "fleet grid changed: regenerate GOLDEN_FLEET_FINGERPRINTS "
            "(PYTHONPATH=src python -m tests.test_fleet)"
        )
        mismatches = {
            combo: (fingerprint, GOLDEN_FLEET_FINGERPRINTS[combo])
            for combo, fingerprint in observed.items()
            if fingerprint != GOLDEN_FLEET_FINGERPRINTS[combo]
        }
        assert not mismatches, (
            f"fleet behaviour changed for {sorted(mismatches)}; if intentional, "
            "regenerate GOLDEN_FLEET_FINGERPRINTS "
            "(PYTHONPATH=src python -m tests.test_fleet)"
        )

    def test_fingerprint_is_recomputable_from_the_result(self, fleet_grid):
        result = fleet_grid[("fleet_mixed_platforms", "least_loaded")]
        assert result.fingerprint() == result.fingerprint()


# ------------------------------------------------------------------- bench


class TestFleetBenchHelpers:
    def test_bench_device_mix_sums_and_is_deterministic(self):
        assert sum(bench_device_mix(1000).values()) == 1000
        assert sum(bench_device_mix(7).values()) == 7
        assert bench_device_mix(50) == bench_device_mix(50)
        assert all(count > 0 for count in bench_device_mix(3).values())

    def test_bench_device_mix_rejects_empty_fleets(self):
        with pytest.raises(ValueError):
            bench_device_mix(0)

    def test_compare_fleet_bench_gates_and_skips(self):
        from repro.fleet.bench import FleetBenchResult

        result = FleetBenchResult(
            devices=100,
            scenario="fleet_mixed_platforms",
            policy="least_loaded",
            orchestrated_s=2.0,
            static_s=1.0,
            serial_s=3.0,
            fingerprints_identical=True,
            orchestrated_violation_rate=0.01,
            static_violation_rate=0.2,
            migrations=3,
            orchestrated_fingerprint="aa",
            static_fingerprint="bb",
        )
        baseline = {"results": {"devices": 100, "scenario": "fleet_mixed_platforms", "orchestrated_s": 1.0}}
        regressions = compare_fleet_bench(result, baseline, max_regression=0.25)
        assert len(regressions) == 1 and regressions[0].metric == "orchestrated_s"
        assert not compare_fleet_bench(result, baseline, max_regression=2.0)
        # A baseline from a different fleet size is not comparable.
        other = {"results": {"devices": 10, "scenario": "fleet_mixed_platforms", "orchestrated_s": 1.0}}
        assert not compare_fleet_bench(result, other, max_regression=0.0)


# --------------------------------------------------------------------- CLI


class TestFleetCLI:
    def test_policies_list(self, capsys):
        assert main(["fleet", "policies", "list"]) == 0
        output = capsys.readouterr().out
        assert "least_loaded" in output and "static" in output

    def test_scenarios_list(self, capsys):
        assert main(["fleet", "scenarios", "list"]) == 0
        assert "fleet_rush_hour_regional" in capsys.readouterr().out

    def test_run_spec_file_with_store_and_resume(self, capsys, tmp_path):
        spec = FleetSpec(
            scenario="fleet_mixed_platforms",
            policy="round_robin",
            devices={"generic_quad": 2},
        )
        path = tmp_path / "fleet.toml"
        spec.save(path)
        store = tmp_path / "fleet.sqlite"
        assert main(["fleet", "run", str(path), "--store", str(store)]) == 0
        first = capsys.readouterr().out
        assert spec.fleet_id() in first
        assert "1 fleet result(s) streamed" in first
        # Resuming replays the stored aggregate without recomputing.
        assert main(["fleet", "run", str(path), "--store", str(store), "--resume"]) == 0
        second = capsys.readouterr().out
        assert "1 fleet(s) skipped (already stored), 0 computed" in second
        fingerprint = next(
            line for line in first.splitlines() if spec.fleet_id() in line
        ).split()[-1]
        assert fingerprint in second

    def test_run_rejects_unknown_policy(self, capsys):
        assert main(["fleet", "run", "--policy", "nope"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_rejects_bad_device_mix(self, capsys):
        assert main(["fleet", "run", "--devices", "generic_quad"]) == 2
        assert "PRESET=COUNT" in capsys.readouterr().err
        assert main(["fleet", "run", "--devices", "generic_quad=0"]) == 2
        assert "positive" in capsys.readouterr().err

    def test_resume_without_store_fails(self, capsys):
        assert main(["fleet", "run", "--resume"]) == 2
        assert "--resume needs --store" in capsys.readouterr().err


def _regenerate() -> None:  # pragma: no cover - maintenance hook
    from repro.dnn import IncrementalTrainer, make_dynamic_cifar_dnn

    trained = IncrementalTrainer().train(make_dynamic_cifar_dnn())
    for scenario, mix in sorted(SMALL_MIXES.items()):
        for policy in sorted(GRID_POLICIES):
            spec = FleetSpec(scenario=scenario, policy=policy, devices=mix)
            result = run_fleet(spec, backend="batched", trained=trained)
            print(f'    ("{scenario}", "{policy}"): "{result.fingerprint()}",')


if __name__ == "__main__":  # pragma: no cover - maintenance hook
    _regenerate()
