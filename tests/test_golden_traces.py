"""Golden-trace regression harness.

Locks a compact fingerprint of the simulation trace of every registry
scenario under every registered manager at seed 0.  A change in any of these
digests means simulated *behaviour* changed — job timing, placement,
configuration choices, power/thermal trajectories or decision cadence — and
must be deliberate: refactors that intend to be behaviour-preserving (like
the operating-point cache) must keep this table bit-for-bit stable, and PRs
that intentionally change policy behaviour must update the table in the same
commit, making the change loud and reviewable.

Regenerate after an intentional behaviour change with::

    PYTHONPATH=src python -m tests.test_golden_traces
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.sim.trace import DecisionRecord, SimulationTrace

# Fingerprints of every (scenario, manager) registry combination at seed 0 on
# the default platform.  Regenerate with the module's __main__ hook.
GOLDEN_FINGERPRINTS: Dict[Tuple[str, str], str] = {
    ("accuracy_critical", "governor_only"): "0880432a318bffdf",
    ("accuracy_critical", "rtm"): "a248943b58ba5362",
    ("accuracy_critical", "rtm_min_energy"): "0d3aef99708e903c",
    ("accuracy_critical", "static_deployment"): "55e6d24ba56de66a",
    ("battery_saver", "governor_only"): "4afe8967fdb38795",
    ("battery_saver", "rtm"): "ccb9c346881509c1",
    ("battery_saver", "rtm_min_energy"): "86a25ef9923baca5",
    ("battery_saver", "static_deployment"): "029822f9099df0c6",
    ("bursty", "governor_only"): "98bf7c3992d9fdde",
    ("bursty", "rtm"): "f9a9999dc96b79f4",
    ("bursty", "rtm_min_energy"): "75beffb9dbb4d2b2",
    ("bursty", "static_deployment"): "39e7f51fad0da6a8",
    ("fig2", "governor_only"): "b3f79d01863fc094",
    ("fig2", "rtm"): "ae3a41ea769ecf8c",
    ("fig2", "rtm_min_energy"): "9d0e9d729e270640",
    ("fig2", "static_deployment"): "6401c0058e7cb6ac",
    ("mixed_criticality", "governor_only"): "8956ac5e01be6e8b",
    ("mixed_criticality", "rtm"): "3493d7b90a14d56a",
    ("mixed_criticality", "rtm_min_energy"): "ef413349ac009b4f",
    ("mixed_criticality", "static_deployment"): "741211ce3e1feea2",
    ("multi_app_contention", "governor_only"): "6cb7331797126123",
    ("multi_app_contention", "rtm"): "d9969b1272b84f16",
    ("multi_app_contention", "rtm_min_energy"): "45467befb982dcc3",
    ("multi_app_contention", "static_deployment"): "c0840cc8bb9a89bf",
    ("multi_dnn", "governor_only"): "a694d76ba8d61ca0",
    ("multi_dnn", "rtm"): "05b5b46c74e83e6e",
    ("multi_dnn", "rtm_min_energy"): "9270c7eb5ab2d02d",
    ("multi_dnn", "static_deployment"): "0799914e790f7aba",
    ("overload", "governor_only"): "ca6caf043c2ac3dc",
    ("overload", "rtm"): "dc1afb1139355c27",
    ("overload", "rtm_min_energy"): "00518213d59560b3",
    ("overload", "static_deployment"): "01986dbe1c004f38",
    ("rush_hour", "governor_only"): "a95030ad9358e856",
    ("rush_hour", "rtm"): "f6a57349578bc914",
    ("rush_hour", "rtm_min_energy"): "abbaa578a30393a9",
    ("rush_hour", "static_deployment"): "0d72aaa800ed55c2",
    ("single_dnn", "governor_only"): "281244cd26fa352b",
    ("single_dnn", "rtm"): "7f71ab5f7d35f5cd",
    ("single_dnn", "rtm_min_energy"): "98e5ff6aef9b9476",
    ("single_dnn", "static_deployment"): "8a07ca660a1b0ffc",
    ("steady", "governor_only"): "6655b1c0546c8ee0",
    ("steady", "rtm"): "f007a5d255a0ea13",
    ("steady", "rtm_min_energy"): "551bd3f241b9a2a9",
    ("steady", "static_deployment"): "e14f02dabeb160bc",
    ("thermal_stress", "governor_only"): "2f8fb8a27958d834",
    ("thermal_stress", "rtm"): "650d8207a230513d",
    ("thermal_stress", "rtm_min_energy"): "7e5368abe28ba5d5",
    ("thermal_stress", "static_deployment"): "53961bb17add0232",
}


class TestFingerprint:
    def test_fingerprint_is_deterministic(self, registry_grid_cached):
        trace = registry_grid_cached.traces["fig2/rtm/seed0"]
        assert trace.fingerprint() == trace.fingerprint()

    def test_fingerprint_distinguishes_managers(self, registry_grid_cached):
        assert (
            registry_grid_cached.traces["fig2/rtm/seed0"].fingerprint()
            != registry_grid_cached.traces["fig2/governor_only/seed0"].fingerprint()
        )

    def test_fingerprint_ignores_cache_counters(self):
        plain = SimulationTrace(duration_ms=100.0)
        plain.record_decision(DecisionRecord(time_ms=1.0, num_actions=2, trigger="epoch"))
        counted = SimulationTrace(duration_ms=100.0)
        counted.record_decision(
            DecisionRecord(
                time_ms=1.0, num_actions=2, trigger="epoch", cache_hits=7, cache_misses=3
            )
        )
        assert plain.fingerprint() == counted.fingerprint()

    def test_fingerprint_sees_behavioural_changes(self):
        base = SimulationTrace(duration_ms=100.0)
        base.record_decision(DecisionRecord(time_ms=1.0, num_actions=2, trigger="epoch"))
        changed = SimulationTrace(duration_ms=100.0)
        changed.record_decision(DecisionRecord(time_ms=1.0, num_actions=3, trigger="epoch"))
        assert base.fingerprint() != changed.fingerprint()


class TestGoldenTraces:
    def test_every_combination_is_locked(self, registry_grid_cached):
        observed = {
            tuple(name.rsplit("/seed0", 1)[0].split("/")): trace.fingerprint()
            for name, trace in registry_grid_cached.traces.items()
        }
        assert set(observed) == set(GOLDEN_FINGERPRINTS), (
            "registry changed: regenerate GOLDEN_FINGERPRINTS "
            "(PYTHONPATH=src python -m tests.test_golden_traces)"
        )
        mismatches = {
            combo: (fingerprint, GOLDEN_FINGERPRINTS[combo])
            for combo, fingerprint in observed.items()
            if fingerprint != GOLDEN_FINGERPRINTS[combo]
        }
        assert not mismatches, (
            f"behaviour changed for {sorted(mismatches)}; if intentional, regenerate "
            "GOLDEN_FINGERPRINTS (PYTHONPATH=src python -m tests.test_golden_traces)"
        )


def _regenerate() -> None:  # pragma: no cover - maintenance hook
    from repro.analysis import ParallelSweepRunner
    from repro.analysis.parallel import MANAGER_REGISTRY
    from repro.workloads.scenarios import SCENARIO_REGISTRY

    result = ParallelSweepRunner(max_workers=1).grid(
        sorted(SCENARIO_REGISTRY), sorted(MANAGER_REGISTRY), seeds=[0]
    )
    assert not result.errors, result.errors
    for name, trace in result.traces.items():
        scenario, manager = name.rsplit("/seed0", 1)[0].split("/")
        print(f'    ("{scenario}", "{manager}"): "{trace.fingerprint()}",')


if __name__ == "__main__":  # pragma: no cover - maintenance hook
    _regenerate()
