"""Golden-trace regression harness.

Locks a compact fingerprint of the simulation trace of every registry
scenario under every registered manager at seed 0.  A change in any of these
digests means simulated *behaviour* changed — job timing, placement,
configuration choices, power/thermal trajectories or decision cadence — and
must be deliberate: refactors that intend to be behaviour-preserving (like
the operating-point cache) must keep this table bit-for-bit stable, and PRs
that intentionally change policy behaviour must update the table in the same
commit, making the change loud and reviewable.

Regenerate after an intentional behaviour change with::

    PYTHONPATH=src python -m tests.test_golden_traces
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.sim.trace import DecisionRecord, SimulationTrace

# Fingerprints of every (scenario, manager) registry combination at seed 0 on
# the default platform.  Regenerate with the module's __main__ hook.
GOLDEN_FINGERPRINTS: Dict[Tuple[str, str], str] = {
    ("accuracy_critical", "governor_only"): "0880432a318bffdf",
    ("accuracy_critical", "rtm"): "a248943b58ba5362",
    ("accuracy_critical", "rtm_min_energy"): "0d3aef99708e903c",
    ("accuracy_critical", "static_deployment"): "55e6d24ba56de66a",
    ("battery_saver", "governor_only"): "4afe8967fdb38795",
    ("battery_saver", "rtm"): "ccb9c346881509c1",
    ("battery_saver", "rtm_min_energy"): "86a25ef9923baca5",
    ("battery_saver", "static_deployment"): "029822f9099df0c6",
    ("battery_saver_accuracy_critical", "governor_only"): "d0b152cfdfb80d77",
    ("battery_saver_accuracy_critical", "rtm"): "6ae0e56810325745",
    ("battery_saver_accuracy_critical", "rtm_min_energy"): "86cae8c9d1b54574",
    ("battery_saver_accuracy_critical", "static_deployment"): "e676b2998c657e97",
    ("bursty", "governor_only"): "98bf7c3992d9fdde",
    ("bursty", "rtm"): "f9a9999dc96b79f4",
    ("bursty", "rtm_min_energy"): "75beffb9dbb4d2b2",
    ("bursty", "static_deployment"): "39e7f51fad0da6a8",
    ("bursty_x2_exynos", "governor_only"): "73baaff0ddb61deb",
    ("bursty_x2_exynos", "rtm"): "e148b21026d85302",
    ("bursty_x2_exynos", "rtm_min_energy"): "722b06ae811223da",
    ("bursty_x2_exynos", "static_deployment"): "9facc33d4e73720d",
    ("chaos_bursty_transient_crashes", "governor_only"): "a50a2cd395f758dd",
    ("chaos_bursty_transient_crashes", "rtm"): "7c64c29387087595",
    ("chaos_bursty_transient_crashes", "rtm_min_energy"): "31952d2206959697",
    ("chaos_bursty_transient_crashes", "static_deployment"): "73551e0bc5ec1b0c",
    ("chaos_double_fault", "governor_only"): "4f16461a367b4526",
    ("chaos_double_fault", "rtm"): "1e1c989c5cee885b",
    ("chaos_double_fault", "rtm_min_energy"): "6ea90e3cd729f701",
    ("chaos_double_fault", "static_deployment"): "d2096afe9d019d65",
    ("chaos_flaky_npu", "governor_only"): "799e4e89cd1b2fe1",
    ("chaos_flaky_npu", "rtm"): "5ff574336e027afa",
    ("chaos_flaky_npu", "rtm_min_energy"): "4d48614432db0c1c",
    ("chaos_flaky_npu", "static_deployment"): "871b9d34fb5cbd64",
    ("chaos_overload_freq_cap", "governor_only"): "d489e2463251fb31",
    ("chaos_overload_freq_cap", "rtm"): "1d7b75145cc93b6b",
    ("chaos_overload_freq_cap", "rtm_min_energy"): "4845001eecf43eb0",
    ("chaos_overload_freq_cap", "static_deployment"): "d89a713cf38e3f4c",
    ("chaos_rush_hour_core_failure", "governor_only"): "e233ee351364d5eb",
    ("chaos_rush_hour_core_failure", "rtm"): "975ba1e5d9f65662",
    ("chaos_rush_hour_core_failure", "rtm_min_energy"): "aa44c97a9dbf4b32",
    ("chaos_rush_hour_core_failure", "static_deployment"): "092bd5d0bb18d79f",
    ("chaos_thermal_sensor_dropout", "governor_only"): "b147b96574823c66",
    ("chaos_thermal_sensor_dropout", "rtm"): "aaaacd49da60ac50",
    ("chaos_thermal_sensor_dropout", "rtm_min_energy"): "a675e3492d8e8829",
    ("chaos_thermal_sensor_dropout", "static_deployment"): "803b0b73f8507938",
    ("compose", "governor_only"): "28567e4707cef379",
    ("compose", "rtm"): "86f7fc946685f69a",
    ("compose", "rtm_min_energy"): "7597df3aa69fd193",
    ("compose", "static_deployment"): "eed2edaa3d4e9a91",
    ("diurnal", "governor_only"): "e5e1bcb3e6ee18f6",
    ("diurnal", "rtm"): "f0711c79f50e3783",
    ("diurnal", "rtm_min_energy"): "17a31875012742e1",
    ("diurnal", "static_deployment"): "70fb34d19f0db117",
    ("double_rush_hour", "governor_only"): "f2a5331c52a11950",
    ("double_rush_hour", "rtm"): "50de5cadd431f113",
    ("double_rush_hour", "rtm_min_energy"): "902057663c1d8745",
    ("double_rush_hour", "static_deployment"): "c2af9de410473875",
    ("fig2", "governor_only"): "b3f79d01863fc094",
    ("fig2", "rtm"): "ae3a41ea769ecf8c",
    ("fig2", "rtm_min_energy"): "9d0e9d729e270640",
    ("fig2", "static_deployment"): "6401c0058e7cb6ac",
    ("fig2_bursty", "governor_only"): "42b6cbd929a7cd0c",
    ("fig2_bursty", "rtm"): "6f98c50d53c0916e",
    ("fig2_bursty", "rtm_min_energy"): "9301fe32e2e9faa2",
    ("fig2_bursty", "static_deployment"): "94fde0cdc1f316da",
    ("fuzzed", "governor_only"): "3477cf7e5586912c",
    ("fuzzed", "rtm"): "d44f46f6f50429b4",
    ("fuzzed", "rtm_min_energy"): "195be4aada52e86b",
    ("fuzzed", "static_deployment"): "850ba610009ed671",
    ("mixed_criticality", "governor_only"): "8956ac5e01be6e8b",
    ("mixed_criticality", "rtm"): "3493d7b90a14d56a",
    ("mixed_criticality", "rtm_min_energy"): "ef413349ac009b4f",
    ("mixed_criticality", "static_deployment"): "741211ce3e1feea2",
    ("mixed_criticality_overload", "governor_only"): "3b99dac09d3c761c",
    ("mixed_criticality_overload", "rtm"): "6d0e9cabadea15d1",
    ("mixed_criticality_overload", "rtm_min_energy"): "9dd2ee58627ef109",
    ("mixed_criticality_overload", "static_deployment"): "445f570367646e4a",
    ("multi_app_contention", "governor_only"): "6cb7331797126123",
    ("multi_app_contention", "rtm"): "d9969b1272b84f16",
    ("multi_app_contention", "rtm_min_energy"): "45467befb982dcc3",
    ("multi_app_contention", "static_deployment"): "c0840cc8bb9a89bf",
    ("multi_dnn", "governor_only"): "a694d76ba8d61ca0",
    ("multi_dnn", "rtm"): "05b5b46c74e83e6e",
    ("multi_dnn", "rtm_min_energy"): "9270c7eb5ab2d02d",
    ("multi_dnn", "static_deployment"): "0799914e790f7aba",
    ("overload", "governor_only"): "ca6caf043c2ac3dc",
    ("overload", "rtm"): "dc1afb1139355c27",
    ("overload", "rtm_min_energy"): "00518213d59560b3",
    ("overload", "static_deployment"): "01986dbe1c004f38",
    ("overload_slow_motion", "governor_only"): "7881d4845e1762ce",
    ("overload_slow_motion", "rtm"): "85ee5a237f806416",
    ("overload_slow_motion", "rtm_min_energy"): "a7c6e3f284a38b63",
    ("overload_slow_motion", "static_deployment"): "47cd6c68a5048ad3",
    ("rush_hour", "governor_only"): "a95030ad9358e856",
    ("rush_hour", "rtm"): "f6a57349578bc914",
    ("rush_hour", "rtm_min_energy"): "abbaa578a30393a9",
    ("rush_hour", "static_deployment"): "0d72aaa800ed55c2",
    ("rush_hour_then_battery_saver", "governor_only"): "40d460d7ec95be41",
    ("rush_hour_then_battery_saver", "rtm"): "0d85ffd4691ff921",
    ("rush_hour_then_battery_saver", "rtm_min_energy"): "fccd4a7d8a319def",
    ("rush_hour_then_battery_saver", "static_deployment"): "15d999e2eae19e7c",
    ("single_dnn", "governor_only"): "281244cd26fa352b",
    ("single_dnn", "rtm"): "7f71ab5f7d35f5cd",
    ("single_dnn", "rtm_min_energy"): "98e5ff6aef9b9476",
    ("single_dnn", "static_deployment"): "8a07ca660a1b0ffc",
    ("steady", "governor_only"): "6655b1c0546c8ee0",
    ("steady", "rtm"): "f007a5d255a0ea13",
    ("steady", "rtm_min_energy"): "551bd3f241b9a2a9",
    ("steady", "static_deployment"): "e14f02dabeb160bc",
    ("steady_then_overload", "governor_only"): "59637371d30f4703",
    ("steady_then_overload", "rtm"): "df0d1b392c89e203",
    ("steady_then_overload", "rtm_min_energy"): "490e47d3ba9363e0",
    ("steady_then_overload", "static_deployment"): "190fa2657c558fb2",
    ("thermal_stress", "governor_only"): "2f8fb8a27958d834",
    ("thermal_stress", "rtm"): "650d8207a230513d",
    ("thermal_stress", "rtm_min_energy"): "7e5368abe28ba5d5",
    ("thermal_stress", "static_deployment"): "53961bb17add0232",
    ("thermal_stress_jittered", "governor_only"): "1cd78aa0dda97ea1",
    ("thermal_stress_jittered", "rtm"): "90a735f9edadc357",
    ("thermal_stress_jittered", "rtm_min_energy"): "f073c25242d4caa8",
    ("thermal_stress_jittered", "static_deployment"): "20359bb60315d4f3",
    ("trace", "governor_only"): "a95030ad9358e856",
    ("trace", "rtm"): "f6a57349578bc914",
    ("trace", "rtm_min_energy"): "abbaa578a30393a9",
    ("trace", "static_deployment"): "0d72aaa800ed55c2",
}


class TestFingerprint:
    def test_fingerprint_is_deterministic(self, registry_grid_cached):
        trace = registry_grid_cached.traces["fig2/rtm/seed0"]
        assert trace.fingerprint() == trace.fingerprint()

    def test_fingerprint_distinguishes_managers(self, registry_grid_cached):
        assert (
            registry_grid_cached.traces["fig2/rtm/seed0"].fingerprint()
            != registry_grid_cached.traces["fig2/governor_only/seed0"].fingerprint()
        )

    def test_fingerprint_ignores_cache_counters(self):
        plain = SimulationTrace(duration_ms=100.0)
        plain.record_decision(DecisionRecord(time_ms=1.0, num_actions=2, trigger="epoch"))
        counted = SimulationTrace(duration_ms=100.0)
        counted.record_decision(
            DecisionRecord(
                time_ms=1.0, num_actions=2, trigger="epoch", cache_hits=7, cache_misses=3
            )
        )
        assert plain.fingerprint() == counted.fingerprint()

    def test_fingerprint_sees_behavioural_changes(self):
        base = SimulationTrace(duration_ms=100.0)
        base.record_decision(DecisionRecord(time_ms=1.0, num_actions=2, trigger="epoch"))
        changed = SimulationTrace(duration_ms=100.0)
        changed.record_decision(DecisionRecord(time_ms=1.0, num_actions=3, trigger="epoch"))
        assert base.fingerprint() != changed.fingerprint()


class TestGoldenTraces:
    def test_every_combination_is_locked(self, registry_grid_cached):
        observed = {
            tuple(name.rsplit("/seed0", 1)[0].split("/")): trace.fingerprint()
            for name, trace in registry_grid_cached.traces.items()
        }
        assert set(observed) == set(GOLDEN_FINGERPRINTS), (
            "registry changed: regenerate GOLDEN_FINGERPRINTS "
            "(PYTHONPATH=src python -m tests.test_golden_traces)"
        )
        mismatches = {
            combo: (fingerprint, GOLDEN_FINGERPRINTS[combo])
            for combo, fingerprint in observed.items()
            if fingerprint != GOLDEN_FINGERPRINTS[combo]
        }
        assert not mismatches, (
            f"behaviour changed for {sorted(mismatches)}; if intentional, regenerate "
            "GOLDEN_FINGERPRINTS (PYTHONPATH=src python -m tests.test_golden_traces)"
        )


class TestTraceReplayGoldens:
    """The ``trace`` scenario is a lossless replay of its default source.

    Its builder records ``rush_hour`` (seed 0) to an in-memory
    :class:`~repro.workloads.traces.ArrivalTrace` and replays the
    reconstitution, so under every manager its fingerprint must equal the
    source's — the golden table carries the proof, and this test keeps the
    two rows from drifting apart independently.
    """

    def test_trace_golden_rows_equal_rush_hour_rows(self):
        managers = {manager for _, manager in GOLDEN_FINGERPRINTS}
        for manager in sorted(managers):
            assert (
                GOLDEN_FINGERPRINTS[("trace", manager)]
                == GOLDEN_FINGERPRINTS[("rush_hour", manager)]
            ), f"trace replay diverged from its source under {manager}"

    def test_live_trace_rows_match_source_rows(self, registry_grid_cached):
        traces = registry_grid_cached.traces
        for manager in ("rtm", "governor_only"):
            assert (
                traces[f"trace/{manager}/seed0"].fingerprint()
                == traces[f"rush_hour/{manager}/seed0"].fingerprint()
            )


def _regenerate() -> None:  # pragma: no cover - maintenance hook
    from repro.analysis import ParallelSweepRunner
    from repro.analysis.parallel import MANAGER_REGISTRY
    from repro.workloads.scenarios import SCENARIO_REGISTRY

    result = ParallelSweepRunner(workers=1).grid(
        sorted(SCENARIO_REGISTRY), sorted(MANAGER_REGISTRY), seeds=[0]
    )
    assert not result.errors, result.errors
    for name, trace in result.traces.items():
        scenario, manager = name.rsplit("/seed0", 1)[0].split("/")
        print(f'    ("{scenario}", "{manager}"): "{trace.fingerprint()}",')


if __name__ == "__main__":  # pragma: no cover - maintenance hook
    _regenerate()
