"""Integration tests: end-to-end scenarios comparing the RTM with the baselines.

These are the executable versions of the paper's qualitative claims:

* the operating-point space exposes the Fig 4(a) structure (A7 below A15 in
  power, smaller configurations cheaper, frequency sweeps monotone);
* the case-study budgets select the configurations the paper names;
* in the Fig 2 scenario the application-aware RTM keeps requirements met
  while the static and governor-only baselines miss most of theirs.
"""

import numpy as np
import pytest

from repro.baselines import GovernorOnlyManager, StaticDeploymentManager
from repro.rtm import MinEnergyUnderConstraints, RuntimeManager
from repro.sim import simulate_scenario
from repro.workloads import fig2_scenario, multi_dnn_scenario

pytestmark = pytest.mark.integration


@pytest.fixture(scope="module")
def fig2_traces(trained_dnn):
    """Run the Fig 2 scenario once under each manager (shared across tests)."""
    factory = lambda: trained_dnn  # noqa: E731 - tiny fixture-local factory
    traces = {}
    traces["rtm"] = simulate_scenario(
        fig2_scenario(trained_factory=factory),
        RuntimeManager(policy_overrides={"dnn2": MinEnergyUnderConstraints()}),
    )
    traces["governor"] = simulate_scenario(
        fig2_scenario(trained_factory=factory), GovernorOnlyManager()
    )
    traces["static"] = simulate_scenario(
        fig2_scenario(trained_factory=factory), StaticDeploymentManager()
    )
    return traces


class TestFig2Scenario:
    def test_rtm_keeps_requirements_met(self, fig2_traces):
        assert fig2_traces["rtm"].violation_rate() < 0.05

    def test_baselines_miss_most_requirements(self, fig2_traces):
        assert fig2_traces["governor"].violation_rate() > 0.5
        assert fig2_traces["static"].violation_rate() > 0.5

    def test_rtm_beats_baselines_by_large_margin(self, fig2_traces):
        rtm = fig2_traces["rtm"].violation_rate()
        for baseline in ("governor", "static"):
            assert fig2_traces[baseline].violation_rate() > rtm + 0.3

    def test_rtm_uses_the_dynamic_dnn_knob(self, fig2_traces):
        configurations = {job.configuration for job in fig2_traces["rtm"].completed_jobs()}
        assert len(configurations) > 1  # it actually scaled the DNNs

    def test_rtm_remaps_dnn1_away_from_accelerator(self, fig2_traces):
        jobs = fig2_traces["rtm"].completed_jobs("dnn1")
        early = {job.cluster for job in jobs if job.start_ms < 5000.0}
        late = {job.cluster for job in jobs if job.start_ms > 16000.0}
        # DNN1 starts on the accelerator and is pushed to a CPU cluster once
        # DNN2 and the AR/VR application claim it.
        assert "mali_gpu" in early
        assert late and "mali_gpu" not in late

    def test_requirement_relaxation_shrinks_dnn2(self, fig2_traces, trained_dnn):
        jobs = fig2_traces["rtm"].completed_jobs("dnn2")
        before = [j.configuration for j in jobs if 16000.0 <= j.start_ms < 25000.0]
        after = [j.configuration for j in jobs if j.start_ms >= 26000.0]
        assert before and after
        # Fig 2(d): once the accuracy requirement is relaxed, DNN2 runs at a
        # smaller (or equal) configuration on average.
        assert np.mean(after) <= np.mean(before) + 1e-9

    def test_every_manager_completes_some_work(self, fig2_traces):
        for trace in fig2_traces.values():
            assert trace.completed_jobs()

    def test_rtm_energy_not_pathological(self, fig2_traces):
        # The RTM meets requirements without blowing the energy budget: its
        # total energy stays within 3x of the static baseline's (which runs
        # far fewer jobs because most of DNN2's jobs are dropped).
        rtm_energy = fig2_traces["rtm"].total_energy_mj()
        assert rtm_energy > 0
        per_job_rtm = rtm_energy / max(1, len(fig2_traces["rtm"].completed_jobs()))
        assert per_job_rtm < 300.0  # well below worst-case A15 full-power inference


class TestMultiDNNScenario:
    def test_three_dnns_share_the_platform(self, trained_dnn):
        scenario = multi_dnn_scenario(num_dnns=3, duration_ms=8000.0)
        trace = simulate_scenario(scenario, RuntimeManager())
        summary = trace.summary()
        assert len(summary["per_app"]) == 3
        # The RTM keeps the overall violation rate low even with three DNNs.
        assert trace.violation_rate() < 0.2
        clusters_used = {job.cluster for job in trace.completed_jobs()}
        assert len(clusters_used) >= 2  # the platform is genuinely shared
