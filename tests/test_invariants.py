"""Property-based simulation invariants across the whole scenario registry.

The scenario space now grows by composition and fuzzing faster than anyone
can eyeball individual traces, so these tests pin down what must hold for
*every* simulation, whatever the workload and manager:

* event/job times are ordered (release <= start <= finish, monotone samples);
* job accounting conserves: released jobs are completed, dropped, or (at
  most one per application) still in flight at the horizon;
* physical quantities are non-negative and accuracies are percentages;
* a (spec, seed) pair is deterministic: rerunning yields the identical
  fingerprint;
* the operating-point cache never changes behaviour, including on fuzzed
  scenarios nobody hand-shaped.

The full suite sweeps the session-scoped registry grid (every scenario x
manager at seed 0).  The ``smoke``-marked subset runs a handful of fresh
simulations end to end — cheap enough for the CI invariants step — and the
hypothesis block samples seeded scenario constructions without simulating.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments import ExperimentSpec, run
from repro.sim.trace import SimulationTrace
from repro.workloads import ScenarioFuzzer, build_scenario, perturb, scale

#: Invariant-suite hypothesis profile: scenario construction is fast but not
#: free (each build trains the simulated DNN), so bound the sample count and
#: drop the per-example deadline (the first build pays one-off import costs).
SAMPLING = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ------------------------------------------------------------------ checkers


def assert_times_ordered(trace: SimulationTrace, label: str) -> None:
    """Per-job ordering plus monotone decision/power-sample timelines."""
    for job in trace.jobs:
        assert job.release_ms <= job.start_ms <= job.finish_ms, (label, job)
        if not job.dropped:
            assert job.finish_ms - job.start_ms == pytest.approx(job.latency_ms), (label, job)
    decision_times = [decision.time_ms for decision in trace.decisions]
    assert decision_times == sorted(decision_times), label
    sample_times = [sample.time_ms for sample in trace.power_samples]
    assert all(b > a for a, b in zip(sample_times, sample_times[1:])), label


def assert_job_conservation(trace: SimulationTrace, label: str) -> None:
    """Released jobs are conserved: completed + dropped + at most 1 in flight.

    Every release (or drop) takes the next per-application job index, and
    each indexed job is recorded exactly once — unless it was still running
    when the scenario ended or its application departed, which can strand at
    most one job per application (the simulator runs one inference at a time
    per application).
    """
    for app_id in trace.app_ids():
        indexes = [job.job_index for job in trace.jobs_for(app_id)]
        assert len(indexes) == len(set(indexes)), (label, app_id, "duplicate job index")
        assert min(indexes) >= 1, (label, app_id)
        in_flight = max(indexes) - len(indexes)
        assert in_flight in (0, 1), (label, app_id, f"{in_flight} jobs unaccounted for")
        completed = len(trace.completed_jobs(app_id))
        dropped = len([job for job in trace.jobs_for(app_id) if job.dropped])
        assert max(indexes) == completed + dropped + in_flight, (label, app_id)


def assert_physical_quantities(trace: SimulationTrace, label: str) -> None:
    """Energies, latencies and powers non-negative; accuracies are percentages."""
    for job in trace.jobs:
        assert job.latency_ms >= 0.0, (label, job)
        assert job.energy_mj >= 0.0, (label, job)
        assert 0.0 <= job.accuracy_percent <= 100.0, (label, job)
        assert job.cores >= 0, (label, job)
        assert job.frequency_mhz >= 0.0, (label, job)
    for sample in trace.power_samples:
        assert sample.power_mw >= 0.0, (label, sample)
        assert 0.0 < sample.temperature_c < 200.0, (label, sample)


def assert_all_invariants(trace: SimulationTrace, label: str) -> None:
    assert_times_ordered(trace, label)
    assert_job_conservation(trace, label)
    assert_physical_quantities(trace, label)


# ------------------------------------------------- full registry x managers


class TestRegistryGridInvariants:
    """Every registry scenario under every manager satisfies the invariants."""

    def test_event_times_ordered(self, registry_grid_cached):
        for label, trace in registry_grid_cached.traces.items():
            assert_times_ordered(trace, label)

    def test_job_count_conservation(self, registry_grid_cached):
        for label, trace in registry_grid_cached.traces.items():
            assert_job_conservation(trace, label)

    def test_physical_quantities_sane(self, registry_grid_cached):
        for label, trace in registry_grid_cached.traces.items():
            assert_physical_quantities(trace, label)

    def test_every_trace_produced_jobs(self, registry_grid_cached):
        for label, trace in registry_grid_cached.traces.items():
            assert trace.jobs, f"{label} simulated no jobs at all"

    def test_fault_records_only_under_fault_plans(self, registry_grid_cached):
        """Fault records appear exactly on the chaos scenarios, time-ordered.

        The registry grid includes the ``chaos_*`` scenarios, so this pins
        both directions: fault-free scenarios must not record faults (their
        fingerprints predate the subsystem), and every chaos trace must
        carry its injections, inside the horizon, in schedule order.
        """
        from repro.sim.faults import FAULT_EVENT_KINDS

        for label, trace in registry_grid_cached.traces.items():
            if label.startswith("chaos_"):
                assert trace.faults, f"{label} injected no faults"
                assert all(fault.time_ms >= 0.0 for fault in trace.faults), label
                # Timeline events (core failures, caps, sensor faults) fire in
                # schedule order inside the horizon.  Crash-model records are
                # exempt: they are written at job start with their *projected*
                # crash/retry timestamps, which interleave across apps.
                timeline = [
                    fault.time_ms
                    for fault in trace.faults
                    if fault.kind in FAULT_EVENT_KINDS
                ]
                assert timeline == sorted(timeline), label
                assert all(t <= trace.duration_ms for t in timeline), label
            else:
                assert not trace.faults, f"{label} recorded unexpected faults"

    def test_crashed_jobs_are_conserved_drops(self, registry_grid_cached):
        """Jobs lost to transient crashes stay inside job conservation."""
        for label, trace in registry_grid_cached.traces.items():
            for job in trace.crashed_jobs():
                assert job.dropped, (label, job)
            assert len(trace.crashed_jobs()) == len(trace.faults_of_kind("job_lost")), label


# -------------------------------------------------------- fuzzed cache parity


class TestFuzzedCacheParity:
    """Cache on == cache off, on scenarios nobody hand-shaped."""

    @pytest.mark.parametrize("seed", [5, 9])
    def test_fingerprints_match_and_invariants_hold(self, seed):
        cached = run(ExperimentSpec(scenario="fuzzed", seed=seed, use_op_cache=True))
        uncached = run(ExperimentSpec(scenario="fuzzed", seed=seed, use_op_cache=False))
        assert cached.trace.fingerprint() == uncached.trace.fingerprint()
        assert_all_invariants(cached.trace, f"fuzzed/seed{seed}")


# ------------------------------------------------------------- smoke subset
#
# Fresh end-to-end runs small enough for the CI invariants step
# (pytest tests/test_invariants.py -m smoke): no session grid, a handful of
# short simulations.


@pytest.mark.smoke
class TestSmokeInvariants:
    SPECS = (
        ExperimentSpec(scenario="steady", manager="rtm"),
        ExperimentSpec(scenario="fuzzed", manager="governor_only", seed=3),
        ExperimentSpec(scenario="compose", manager="rtm", seed=1),
    )

    def test_invariants_on_fresh_runs(self):
        for spec in self.SPECS:
            assert_all_invariants(run(spec).trace, spec.label)

    def test_fingerprint_deterministic_for_fixed_seed(self):
        spec = ExperimentSpec(scenario="fuzzed", manager="governor_only", seed=3)
        assert run(spec).trace.fingerprint() == run(spec).trace.fingerprint()

    def test_fuzzed_cache_parity_smoke(self):
        cached = run(ExperimentSpec(scenario="fuzzed", seed=1, use_op_cache=True))
        uncached = run(ExperimentSpec(scenario="fuzzed", seed=1, use_op_cache=False))
        assert cached.trace.fingerprint() == uncached.trace.fingerprint()


# --------------------------------------------- seeded construction sampling
#
# Hypothesis samples scenario *constructions* (no simulation): whatever the
# seed, composed and fuzzed workloads must come out structurally valid, and
# equal seeds must reproduce them exactly.


def _shape(scenario):
    return [
        (app.app_id, app.arrival_time_ms, app.departure_time_ms, app.requirements)
        for app in scenario.applications
    ]


class TestSeededConstructionProperties:
    @SAMPLING
    @given(seed=st.integers(min_value=0, max_value=2**20))
    def test_fuzzed_scenarios_are_valid_and_reproducible(self, seed):
        scenario = ScenarioFuzzer(seed=seed).scenario()
        ids = [app.app_id for app in scenario.applications]
        assert len(ids) == len(set(ids))
        assert scenario.duration_ms > 0
        assert scenario.applications
        for app in scenario.applications:
            assert app.arrival_time_ms >= 0.0
            if app.departure_time_ms is not None:
                assert app.departure_time_ms > app.arrival_time_ms
        assert _shape(ScenarioFuzzer(seed=seed).scenario()) == _shape(scenario)

    @SAMPLING
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        factor=st.floats(min_value=0.25, max_value=4.0),
    )
    def test_scale_preserves_event_counts_and_order(self, seed, factor):
        base = build_scenario("bursty", seed=seed % 16)
        scaled = scale(base, arrival_factor=factor)
        assert len(scaled.events()) == len(base.events())
        assert [event.app_id for event in scaled.events()] == [
            event.app_id for event in base.events()
        ]

    @SAMPLING
    @given(seed=st.integers(min_value=0, max_value=2**20))
    def test_perturb_keeps_scenarios_valid(self, seed):
        base = build_scenario("multi_app_contention", seed=seed % 16)
        jittered = perturb(base, seed=seed)
        assert len(jittered.applications) == len(base.applications)
        for app in jittered.applications:
            assert app.arrival_time_ms >= 0.0
            if app.departure_time_ms is not None:
                assert app.departure_time_ms > app.arrival_time_ms
