"""Tests for the caching operating-point engine (`repro.rtm.cache`)."""

import pytest

from repro.dnn.training import IncrementalTrainer
from repro.dnn.zoo import make_dynamic_cifar_dnn
from repro.perfmodel.calibrated import CalibratedLatencyModel
from repro.perfmodel.energy import EnergyModel
from repro.perfmodel.roofline import RooflineLatencyModel
from repro.platforms.presets import odroid_xu3
from repro.rtm.cache import (
    OperatingPointCache,
    model_cache_key,
    soc_topology_key,
    temperature_bucket_c,
)
from repro.rtm.manager import RTMConfig, RuntimeManager
from repro.rtm.operating_points import OperatingPointSpace, pareto_front
from repro.rtm.state import AppRuntimeState, SystemState
from repro.workloads.requirements import Requirements
from repro.workloads.tasks import make_dnn_application


class TestTemperatureBucket:
    def test_quantises_to_lower_bucket_edge(self):
        assert temperature_bucket_c(47.3) == 45.0
        assert temperature_bucket_c(45.0) == 45.0
        assert temperature_bucket_c(49.999) == 45.0
        assert temperature_bucket_c(50.0) == 50.0

    def test_width_parameter(self):
        assert temperature_bucket_c(47.3, width_c=10.0) == 40.0
        assert temperature_bucket_c(47.3, width_c=1.0) == 47.0

    def test_negative_temperatures_floor_downwards(self):
        assert temperature_bucket_c(-3.0) == -5.0

    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            temperature_bucket_c(45.0, width_c=0.0)


class TestModelCacheKeys:
    def test_calibrated_models_share_keys(self):
        assert CalibratedLatencyModel().cache_key() == CalibratedLatencyModel().cache_key()

    def test_calibration_table_changes_key(self):
        default = CalibratedLatencyModel()
        trimmed = CalibratedLatencyModel(
            calibrations={
                key: value
                for key, value in default.calibrations.items()
                if key[0] == "odroid_xu3"
            }
        )
        assert default.cache_key() != trimmed.cache_key()

    def test_energy_model_key_includes_utilisation(self):
        latency = CalibratedLatencyModel()
        assert (
            EnergyModel(latency).cache_key()
            == EnergyModel(CalibratedLatencyModel()).cache_key()
        )
        assert (
            EnergyModel(latency, busy_utilisation=0.5).cache_key()
            != EnergyModel(latency).cache_key()
        )

    def test_roofline_key_is_shared(self):
        assert RooflineLatencyModel().cache_key() == ("roofline",)

    def test_unknown_models_fall_back_to_instance_identity(self):
        class Opaque:
            pass

        first, second = Opaque(), Opaque()
        assert model_cache_key(first) != model_cache_key(second)
        assert model_cache_key(first) == model_cache_key(first)

    def test_trained_dnn_keys_stable_across_retrains(self, trained_dnn):
        retrained = IncrementalTrainer().train(make_dynamic_cifar_dnn())
        assert trained_dnn.cache_key() == retrained.cache_key()
        smaller = IncrementalTrainer().train(make_dynamic_cifar_dnn(2))
        assert smaller.cache_key() != trained_dnn.cache_key()

    def test_soc_topology_key_reflects_presets(self, xu3, nano):
        assert soc_topology_key(xu3) == soc_topology_key(odroid_xu3())
        assert soc_topology_key(xu3) != soc_topology_key(nano)


class TestOperatingPointSpaceMemo:
    def test_repeated_enumeration_prices_once(self, trained_dnn, xu3, energy_model):
        space = OperatingPointSpace(trained_dnn, xu3, energy_model)
        first = space.enumerate(temperature_c=45.0)
        priced = space.points_priced
        assert priced == len(first)
        second = space.enumerate(temperature_c=45.0)
        assert space.points_priced == priced
        assert second == first

    def test_restrictions_are_views_over_the_grid(self, trained_dnn, xu3, energy_model):
        space = OperatingPointSpace(trained_dnn, xu3, energy_model)
        space.enumerate(temperature_c=45.0)
        priced = space.points_priced
        restricted = space.enumerate(
            clusters=["a15"],
            configurations=[1.0],
            core_counts=[1, 2],
            frequencies={"a15": [1800.0]},
            temperature_c=45.0,
        )
        # Every restricted point was already priced by the full enumeration.
        assert space.points_priced == priced
        assert {point.cores for point in restricted} == {1, 2}
        assert {point.frequency_mhz for point in restricted} == {1800.0}
        assert {point.configuration for point in restricted} == {1.0}

    def test_temperature_changes_reprice(self, trained_dnn, xu3, energy_model):
        space = OperatingPointSpace(trained_dnn, xu3, energy_model)
        cool = space.enumerate(clusters=["a15"], core_counts=[1], temperature_c=45.0)
        priced = space.points_priced
        hot = space.enumerate(clusters=["a15"], core_counts=[1], temperature_c=80.0)
        assert space.points_priced == 2 * priced
        assert all(h.power_mw > c.power_mw for h, c in zip(hot, cool))


class TestOperatingPointCache:
    @pytest.fixture
    def cache(self):
        return OperatingPointCache()

    def test_enumerate_matches_direct_enumeration(
        self, cache, trained_dnn, xu3, energy_model
    ):
        space = cache.space_for(trained_dnn, xu3, energy_model)
        direct = OperatingPointSpace(trained_dnn, xu3, energy_model).enumerate(
            temperature_c=45.0
        )
        assert cache.enumerate(space, temperature_c=45.0) == direct

    def test_hit_and_miss_counting(self, cache, trained_dnn, xu3, energy_model):
        space = cache.space_for(trained_dnn, xu3, energy_model)
        cache.enumerate(space, temperature_c=45.0)
        assert (cache.stats.hits, cache.stats.misses) == (0, 1)
        cache.enumerate(space, temperature_c=45.0)
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        cache.enumerate(space, temperature_c=50.0)  # different bucket -> miss
        assert (cache.stats.hits, cache.stats.misses) == (1, 2)
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_cached_list_is_a_defensive_copy(self, cache, trained_dnn, xu3, energy_model):
        space = cache.space_for(trained_dnn, xu3, energy_model)
        first = cache.enumerate(space, temperature_c=45.0)
        first.clear()
        assert cache.enumerate(space, temperature_c=45.0)

    def test_space_is_memoised_per_identity(self, cache, trained_dnn, xu3, energy_model):
        space = cache.space_for(trained_dnn, xu3, energy_model)
        assert cache.space_for(trained_dnn, xu3, energy_model) is space
        assert cache.stats.spaces_built == 1
        # A different platform instance with identical topology must not be
        # priced against the old object's live state.
        other = cache.space_for(trained_dnn, odroid_xu3(), energy_model)
        assert other is not space
        assert cache.stats.spaces_built == 2

    def test_space_rebuild_flushes_derived_memos(self, cache, trained_dnn, xu3, energy_model):
        space = cache.space_for(trained_dnn, xu3, energy_model)
        cache.enumerate(space, temperature_c=45.0)
        assert cache.entry_count == 1
        # Same key, different platform instance: the old memoised lists were
        # derived from the replaced objects and must be flushed with them.
        rebuilt = cache.space_for(trained_dnn, odroid_xu3(), energy_model)
        assert rebuilt is not space
        assert cache.entry_count == 0
        assert cache.stats.invalidations == {"space_rebuilt": 1}

    def test_pareto_front_is_memoised(self, cache, trained_dnn, xu3, energy_model):
        space = cache.space_for(trained_dnn, xu3, energy_model)
        points = cache.enumerate(space, temperature_c=45.0)
        key = cache.query_key(space, temperature_c=45.0)
        front = cache.pareto_for(key, points)
        assert front == pareto_front(
            points,
            objectives=("latency_ms", "energy_mj", "power_mw"),
            maximise=("accuracy_percent", "confidence_percent"),
        )
        assert cache.pareto_for(key, points) == front
        assert (cache.stats.pareto_hits, cache.stats.pareto_misses) == (1, 1)

    def test_invalidate_flushes_lists_but_not_pricing(
        self, cache, trained_dnn, xu3, energy_model
    ):
        space = cache.space_for(trained_dnn, xu3, energy_model)
        cache.enumerate(space, temperature_c=45.0)
        priced = cache.points_priced
        cache.invalidate("cores_offline")
        assert cache.stats.invalidations == {"cores_offline": 1}
        assert cache.entry_count == 0
        cache.enumerate(space, temperature_c=45.0)
        assert cache.stats.misses == 2  # re-assembled ...
        assert cache.points_priced == priced  # ... without re-pricing

    def test_eviction_bounds_entries(self, cache, trained_dnn, xu3, energy_model):
        small = OperatingPointCache(max_entries=2)
        space = small.space_for(trained_dnn, xu3, energy_model)
        for temperature in (25.0, 30.0, 35.0, 40.0):
            small.enumerate(space, clusters=["a7"], core_counts=[1], temperature_c=temperature)
        assert small.entry_count == 2
        assert small.stats.evictions == 2

    def test_online_core_count_is_part_of_the_key(
        self, cache, trained_dnn, xu3, energy_model
    ):
        space = cache.space_for(trained_dnn, xu3, energy_model)
        online = cache.enumerate(space, clusters=["a15"], core_counts=[1], temperature_c=45.0)
        xu3.cluster("a15").cores[3].set_online(False)
        offline = cache.enumerate(space, clusters=["a15"], core_counts=[1], temperature_c=45.0)
        assert cache.stats.misses == 2  # the key changed, no stale hit
        # One fewer online core draws less idle power at identical settings.
        assert offline[0].power_mw < online[0].power_mw

    def test_clear_resets_everything(self, cache, trained_dnn, xu3, energy_model):
        space = cache.space_for(trained_dnn, xu3, energy_model)
        cache.enumerate(space, temperature_c=45.0)
        cache.clear()
        assert cache.entry_count == 0
        assert cache.stats.lookups == 0
        assert cache.points_priced == 0

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            OperatingPointCache(max_entries=0)


class TestManagerCacheIntegration:
    def _state(self, xu3, trained_dnn):
        app = make_dnn_application(
            app_id="dnn1",
            trained=trained_dnn,
            requirements=Requirements(target_fps=5.0, min_accuracy_percent=55.0, priority=3),
        )
        runtime = AppRuntimeState(application=app)
        return SystemState(time_ms=0.0, soc=xu3, apps={"dnn1": runtime})

    def test_manager_owns_a_cache_by_default(self):
        manager = RuntimeManager()
        assert manager.cache is not None
        assert manager.cache_stats() is manager.cache.stats

    def test_config_can_disable_the_cache(self):
        manager = RuntimeManager(config=RTMConfig(enable_op_cache=False))
        assert manager.cache is None
        assert manager.cache_stats() is None

    def test_set_operating_point_cache_detaches(self):
        manager = RuntimeManager()
        manager.set_operating_point_cache(None)
        assert manager.cache is None
        assert manager.allocator.cache is None

    def test_cached_and_uncached_selection_agree(self, trained_dnn, xu3):
        requirements = Requirements(max_latency_ms=400.0, max_energy_mj=100.0)
        cached = RuntimeManager().select_operating_point(trained_dnn, xu3, requirements)
        uncached = RuntimeManager(
            config=RTMConfig(enable_op_cache=False)
        ).select_operating_point(trained_dnn, xu3, requirements)
        assert cached == uncached

    def test_repeated_selection_hits_the_cache(self, trained_dnn, xu3):
        manager = RuntimeManager()
        first = manager.select_operating_point(
            trained_dnn, xu3, Requirements(max_latency_ms=400.0, max_energy_mj=100.0)
        )
        second = manager.select_operating_point(
            trained_dnn, xu3, Requirements(max_latency_ms=400.0, max_energy_mj=100.0)
        )
        assert first == second
        stats = manager.cache_stats()
        assert stats is not None and stats.hits >= 1

    def test_decide_invalidates_on_core_offlining(self, trained_dnn, xu3):
        manager = RuntimeManager()
        state = self._state(xu3, trained_dnn)
        manager.decide(state)
        xu3.cluster("a15").cores[3].set_online(False)
        manager.decide(state)
        assert manager.cache_stats().invalidations.get("cores_offline") == 1

    def test_decide_invalidates_on_thermal_bucket_crossing(self, trained_dnn, xu3):
        manager = RuntimeManager()
        state = self._state(xu3, trained_dnn)
        manager.decide(state)
        xu3.thermal.temperature_c += 20.0
        manager.decide(state)
        assert manager.cache_stats().invalidations.get("thermal_bucket") == 1

    def test_decide_invalidates_when_an_app_unmaps(self, trained_dnn, xu3):
        manager = RuntimeManager()
        state = self._state(xu3, trained_dnn)
        manager.decide(state)
        state.apps["dnn1"].mapping = None  # previously mapped by the decision? force it
        # Ensure the transition mapped -> unmapped is observed.
        manager._last_mapped = {"dnn1": True}
        manager.decide(state)
        assert manager.cache_stats().invalidations.get("app_unmapped", 0) >= 1
