"""Tests for the parallel sweep engine.

The central invariant: sweeps aggregate identically whatever the worker
count, because cases are seeded explicitly and results are reassembled in
submission order.  Everything here runs short scenarios so the parallel
machinery (not the simulations) dominates the test budget.
"""

from functools import partial

import pytest

from repro.analysis import (
    MANAGER_REGISTRY,
    ParallelSweepRunner,
    SweepCase,
    make_manager,
)
from repro.baselines import GovernorOnlyManager
from repro.rtm import RuntimeManager
from repro.sim.engine import SimulatorConfig
from repro.workloads import WorkloadGeneratorConfig
from repro.workloads.scenarios import single_dnn_scenario


def _tiny_scenario():
    """Module-level (hence picklable) short scenario factory."""
    return single_dnn_scenario(duration_ms=2000.0)


def _failing_scenario():
    raise RuntimeError("scenario construction exploded")


TINY_CASES = [
    SweepCase(name="rtm", scenario=_tiny_scenario, manager="rtm"),
    SweepCase(name="governor", scenario=_tiny_scenario, manager="governor_only"),
]


class TestManagerRegistry:
    def test_known_managers(self):
        assert {"rtm", "rtm_min_energy", "governor_only", "static_deployment"} <= set(
            MANAGER_REGISTRY
        )

    def test_make_manager_builds_fresh_instances(self):
        a = make_manager("rtm")
        b = make_manager("rtm")
        assert isinstance(a, RuntimeManager)
        assert a is not b

    def test_unknown_manager_raises_with_available_names(self):
        with pytest.raises(KeyError, match="unknown manager 'nope'.*rtm"):
            make_manager("nope")


class TestRunnerBasics:
    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelSweepRunner(workers=0)

    def test_legacy_max_workers_kwarg_raises_with_migration_hint(self):
        with pytest.raises(TypeError, match="workers="):
            ParallelSweepRunner(max_workers=2)

    def test_rejects_duplicate_case_names(self):
        runner = ParallelSweepRunner()
        cases = [TINY_CASES[0], TINY_CASES[0]]
        with pytest.raises(ValueError, match="duplicate sweep case names"):
            runner.run(cases)

    def test_serial_run_produces_traces_in_case_order(self):
        result = ParallelSweepRunner(workers=1).run(TINY_CASES)
        assert list(result.traces) == ["rtm", "governor"]
        assert not result.errors
        assert all(len(trace.jobs) > 0 for trace in result.traces.values())

    def test_simulator_config_is_forwarded(self):
        config = SimulatorConfig(decision_interval_ms=250.0)
        result = ParallelSweepRunner(workers=1, simulator_config=config).run(
            TINY_CASES[:1]
        )
        default = ParallelSweepRunner(workers=1).run(TINY_CASES[:1])
        # Twice the decision epochs in the same simulated time.
        assert len(result.traces["rtm"].decisions) > len(default.traces["rtm"].decisions)


class TestErrorCapture:
    def test_serial_error_is_captured_per_case(self):
        cases = [SweepCase(name="bad", scenario=_failing_scenario, manager="rtm"), *TINY_CASES]
        result = ParallelSweepRunner(workers=1).run(cases)
        assert result.errors == {"bad": "RuntimeError: scenario construction exploded"}
        assert list(result.traces) == ["rtm", "governor"]

    def test_parallel_error_is_captured_per_case(self):
        cases = [SweepCase(name="bad", scenario=_failing_scenario, manager="rtm"), *TINY_CASES]
        result = ParallelSweepRunner(workers=2).run(cases)
        assert result.errors == {"bad": "RuntimeError: scenario construction exploded"}
        assert list(result.traces) == ["rtm", "governor"]

    def test_unknown_registry_names_fail_only_their_case(self):
        cases = [SweepCase(name="bad", scenario="not_a_scenario", manager="rtm"), *TINY_CASES]
        result = ParallelSweepRunner(workers=1).run(cases)
        assert "unknown scenario" in result.errors["bad"]
        assert list(result.traces) == ["rtm", "governor"]


class TestParallelSerialParity:
    def test_identical_aggregates_for_any_worker_count(self):
        cases = [
            SweepCase(name="rtm", scenario=_tiny_scenario, manager="rtm"),
            SweepCase(
                name="rtm_partial",
                scenario=_tiny_scenario,
                manager=partial(RuntimeManager),
            ),
            SweepCase(name="governor_cls", scenario=_tiny_scenario, manager=GovernorOnlyManager),
        ]
        serial = ParallelSweepRunner(workers=1).run(cases)
        parallel = ParallelSweepRunner(workers=3).run(cases)
        assert not serial.errors and not parallel.errors
        assert list(serial.traces) == list(parallel.traces)
        assert serial.violation_rates() == parallel.violation_rates()
        assert serial.energies_mj() == parallel.energies_mj()
        assert serial.mean_accuracies() == parallel.mean_accuracies()
        assert serial.best_case() == parallel.best_case()

    def test_registry_grid_parity(self):
        # Registry-name cases resolve entirely inside the worker process.
        serial = ParallelSweepRunner(workers=1).grid(["single_dnn"], ["rtm"], [0, 1])
        parallel = ParallelSweepRunner(workers=2).grid(["single_dnn"], ["rtm"], [0, 1])
        assert list(serial.traces) == ["single_dnn/rtm/seed0", "single_dnn/rtm/seed1"]
        assert serial.violation_rates() == parallel.violation_rates()
        assert serial.energies_mj() == parallel.energies_mj()


class TestSeedSweep:
    CONFIG = WorkloadGeneratorConfig(num_dnn_apps=1, num_background_apps=0, duration_ms=2000.0)

    def test_identical_aggregates_for_any_worker_count(self):
        legacy = ParallelSweepRunner(workers=1).seed_sweep(
            "rtm", seeds=[1, 2], generator_config=self.CONFIG
        )
        parallel = ParallelSweepRunner(workers=2).seed_sweep(
            "rtm", seeds=[1, 2], generator_config=self.CONFIG
        )
        for key in (
            "seeds",
            "violation_rates",
            "mean_violation_rate",
            "worst_violation_rate",
            "mean_energy_mj",
        ):
            assert legacy[key] == parallel[key], key
        assert parallel["errors"] == {}

    def test_requires_seeds(self):
        with pytest.raises(ValueError, match="at least one seed"):
            ParallelSweepRunner().seed_sweep("rtm", seeds=[])

    def test_all_seeds_failing_raises(self):
        runner = ParallelSweepRunner(workers=1)
        with pytest.raises(RuntimeError, match="every seed failed"):
            runner.seed_sweep("not_a_manager", seeds=[1])

    def test_partial_failures_shrink_the_reported_seed_set(self, monkeypatch):
        # Aggregates cover only surviving seeds, and "seeds" must say so.
        import repro.analysis.parallel as parallel_module

        original = parallel_module._generated_scenario

        def flaky(seed, generator_config, platform_name):
            if seed == 2:
                raise RuntimeError("seed 2 exploded")
            return original(seed, generator_config, platform_name)

        monkeypatch.setattr(parallel_module, "_generated_scenario", flaky)
        result = ParallelSweepRunner(workers=1).seed_sweep(
            "rtm", seeds=[1, 2, 3], generator_config=self.CONFIG
        )
        assert result["seeds"] == [1, 3]
        assert set(result["violation_rates"]) == {1, 3}
        assert "seed 2 exploded" in result["errors"]["seed2"]


class TestCliByteParity:
    def test_sweep_output_is_identical_across_worker_counts(self, capsys):
        from repro.cli import main

        # A seeded scenario, so both invocations really run two distinct cases.
        argv = ["sweep", "--scenarios", "steady", "--managers", "rtm", "--seeds", "2"]
        assert main([*argv, "--workers", "1"]) == 0
        serial_output = capsys.readouterr().out
        assert main([*argv, "--workers", "2"]) == 0
        parallel_output = capsys.readouterr().out
        assert serial_output == parallel_output
