"""Tests for the latency and energy estimators, including Table I calibration."""

import pytest

from repro.data.measurements import TABLE1_ROWS
from repro.dnn.zoo import cifar_group_cnn
from repro.perfmodel.calibrated import (
    DEFAULT_CALIBRATIONS,
    CalibratedLatencyModel,
    ClusterCalibration,
)
from repro.perfmodel.energy import EnergyModel
from repro.perfmodel.roofline import RooflineLatencyModel, effective_cores
from repro.platforms.presets import jetson_nano, odroid_xu3


class TestRoofline:
    def test_latency_decreases_with_frequency(self, reference_network, xu3):
        model = RooflineLatencyModel()
        cluster = xu3.cluster("a15")
        slow = model.latency_ms(reference_network, cluster, frequency_mhz=200.0)
        fast = model.latency_ms(reference_network, cluster, frequency_mhz=1800.0)
        assert fast < slow

    def test_latency_decreases_with_cores(self, reference_network, xu3):
        model = RooflineLatencyModel()
        cluster = xu3.cluster("a15")
        one = model.latency_ms(reference_network, cluster, cores_used=1)
        four = model.latency_ms(reference_network, cluster, cores_used=4)
        assert four < one

    def test_breakdown_components(self, reference_network, xu3):
        model = RooflineLatencyModel()
        breakdown = model.breakdown(reference_network, xu3.cluster("a15"), frequency_mhz=1800.0)
        assert breakdown.compute_ms > 0
        assert breakdown.memory_ms > 0
        assert breakdown.total_ms >= max(breakdown.compute_ms, breakdown.memory_ms)
        # Convolutional CIFAR workload on a CPU cluster is compute bound.
        assert breakdown.compute_bound

    def test_cores_clamped_to_cluster_size(self, reference_network, xu3):
        model = RooflineLatencyModel()
        cluster = xu3.cluster("a15")
        assert model.latency_ms(reference_network, cluster, cores_used=16) == pytest.approx(
            model.latency_ms(reference_network, cluster, cores_used=4)
        )

    def test_throughput_is_inverse_latency(self, reference_network, xu3):
        model = RooflineLatencyModel()
        cluster = xu3.cluster("a7")
        latency = model.latency_ms(reference_network, cluster)
        assert model.throughput_fps(reference_network, cluster) == pytest.approx(1000.0 / latency)

    def test_effective_cores(self):
        assert effective_cores(1, 0.8) == 1.0
        assert effective_cores(4, 1.0) == 4.0
        assert effective_cores(4, 0.5) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            effective_cores(0, 0.8)

    def test_invalid_inputs(self, reference_network, xu3):
        model = RooflineLatencyModel()
        with pytest.raises(ValueError):
            model.latency_ms(reference_network, xu3.cluster("a15"), frequency_mhz=-1.0)
        with pytest.raises(ValueError):
            model.latency_ms(reference_network, xu3.cluster("a15"), cores_used=0)


class TestCalibratedLatency:
    def test_table1_latencies_within_ten_percent(self, reference_network, energy_model, xu3, nano):
        socs = {"odroid_xu3": xu3, "jetson_nano": nano}
        model = energy_model.latency_model
        for row in TABLE1_ROWS:
            soc = socs[row.platform]
            cluster = soc.cluster(row.cluster)
            frequency = (
                row.frequency_mhz
                if cluster.opp_table.contains_frequency(row.frequency_mhz)
                else cluster.opp_table.nearest(row.frequency_mhz).frequency_mhz
            )
            predicted = model.latency_ms(
                reference_network, cluster, frequency_mhz=frequency, cores_used=1, soc_name=row.platform
            )
            assert predicted == pytest.approx(row.execution_time_ms, rel=0.10), row.cores

    def test_latency_scales_with_macs(self, xu3):
        model = CalibratedLatencyModel()
        full = cifar_group_cnn()
        from repro.dnn.dynamic import scale_network_width

        half = scale_network_width(full, 0.5, granularity=4)
        cluster = xu3.cluster("a15")
        full_latency = model.latency_ms(full, cluster, 1000.0, soc_name="odroid_xu3")
        half_latency = model.latency_ms(half, cluster, 1000.0, soc_name="odroid_xu3")
        assert half_latency < full_latency
        ratio = half.total_macs() / full.total_macs()
        # The compute term scales with MACs; the fixed overhead does not.
        assert half_latency > full_latency * ratio * 0.8

    def test_uncalibrated_cluster_falls_back_to_roofline(self, reference_network, xu3):
        model = CalibratedLatencyModel()
        mali = xu3.cluster("mali_gpu")
        fallback = RooflineLatencyModel().latency_ms(reference_network, mali)
        assert model.latency_ms(reference_network, mali) == pytest.approx(fallback)

    def test_cluster_name_lookup_without_soc_name(self, reference_network, xu3):
        model = CalibratedLatencyModel()
        with_name = model.latency_ms(
            reference_network, xu3.cluster("a15"), 1000.0, soc_name="odroid_xu3"
        )
        without_name = model.latency_ms(reference_network, xu3.cluster("a15"), 1000.0)
        assert with_name == pytest.approx(without_name)

    def test_calibration_fit_passes_through_anchors(self):
        calibration = DEFAULT_CALIBRATIONS[("odroid_xu3", "a15")]
        assert calibration.latency_ms(200.0) == pytest.approx(1020.0, rel=1e-6)
        assert calibration.latency_ms(1800.0) == pytest.approx(117.0, rel=1e-6)

    def test_calibration_rejects_bad_frequency(self):
        calibration = ClusterCalibration(compute_ms_mhz=1000.0, overhead_ms=1.0)
        with pytest.raises(ValueError):
            calibration.latency_ms(0.0)


class TestEnergyModel:
    def test_cost_consistency(self, reference_network, energy_model, xu3):
        cost = energy_model.cost(
            reference_network, xu3.cluster("a15"), frequency_mhz=1000.0, soc_name="odroid_xu3"
        )
        assert cost.energy_mj == pytest.approx(cost.power_mw * cost.latency_ms / 1000.0)
        assert cost.fps == pytest.approx(1000.0 / cost.latency_ms)

    def test_table1_energy_within_twenty_percent(self, reference_network, energy_model, xu3, nano):
        socs = {"odroid_xu3": xu3, "jetson_nano": nano}
        for row in TABLE1_ROWS:
            soc = socs[row.platform]
            cluster = soc.cluster(row.cluster)
            frequency = (
                row.frequency_mhz
                if cluster.opp_table.contains_frequency(row.frequency_mhz)
                else cluster.opp_table.nearest(row.frequency_mhz).frequency_mhz
            )
            cost = energy_model.cost(
                reference_network, cluster, frequency_mhz=frequency, cores_used=1, soc_name=row.platform
            )
            assert cost.energy_mj == pytest.approx(row.energy_mj, rel=0.20), row.cores

    def test_more_cores_raise_power(self, reference_network, energy_model, xu3):
        one = energy_model.inference_power_mw(xu3.cluster("a15"), 1800.0, cores_used=1)
        four = energy_model.inference_power_mw(xu3.cluster("a15"), 1800.0, cores_used=4)
        assert four > one

    def test_temperature_raises_power(self, reference_network, energy_model, xu3):
        cold = energy_model.inference_power_mw(xu3.cluster("a15"), 1800.0, temperature_c=40.0)
        hot = energy_model.inference_power_mw(xu3.cluster("a15"), 1800.0, temperature_c=85.0)
        assert hot > cold

    def test_invalid_busy_utilisation(self, energy_model):
        with pytest.raises(ValueError):
            EnergyModel(energy_model.latency_model, busy_utilisation=0.0)
