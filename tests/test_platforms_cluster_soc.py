"""Tests for the cluster and SoC composition layers and the presets."""

import pytest

from repro.platforms.cluster import Cluster, ClusterPerformanceParams
from repro.platforms.core import CoreType
from repro.platforms.dvfs import FrequencyDomain, make_opp_table
from repro.platforms.presets import (
    PRESET_BUILDERS,
    a13_like,
    build_preset,
    jetson_nano,
    kirin990_like,
    odroid_xu3,
)
from repro.platforms.soc import MemorySpec, Soc


def make_cluster(name="cpu", cores=4):
    return Cluster(
        name=name,
        core_type=CoreType.CPU_BIG,
        num_cores=cores,
        opp_table=make_opp_table([400.0, 800.0, 1200.0]),
    )


class TestCluster:
    def test_cores_created_with_cluster_name(self):
        cluster = make_cluster()
        assert cluster.num_cores == 4
        assert all(core.cluster_name == "cpu" for core in cluster.cores)
        assert cluster.core("cpu-2").core_id == "cpu-2"

    def test_unknown_core_raises(self):
        with pytest.raises(KeyError):
            make_cluster().core("cpu-9")

    def test_frequency_defaults_to_max_and_can_change(self):
        cluster = make_cluster()
        assert cluster.frequency_mhz == 1200.0
        cluster.set_frequency(400.0)
        assert cluster.frequency_mhz == 400.0
        assert cluster.voltage_v == cluster.opp_table.voltage_at(400.0)

    def test_reserve_and_release_cores(self):
        cluster = make_cluster()
        granted = cluster.reserve_cores(2, "dnn1")
        assert len(granted) == 2
        assert len(cluster.free_cores) == 2
        assert len(cluster.cores_reserved_by("dnn1")) == 2
        released = cluster.release_owner("dnn1")
        assert released == 2
        assert len(cluster.free_cores) == 4

    def test_reserve_more_than_free_raises(self):
        cluster = make_cluster(cores=2)
        cluster.reserve_cores(2, "a")
        with pytest.raises(RuntimeError, match="free cores"):
            cluster.reserve_cores(1, "b")

    def test_peak_macs_scales_with_cores_and_frequency(self):
        cluster = make_cluster()
        single = cluster.peak_macs_per_second(1)
        quad = cluster.peak_macs_per_second(4)
        assert quad > single
        cluster.set_frequency(400.0)
        assert cluster.peak_macs_per_second(1) < single

    def test_power_increases_with_utilisation(self):
        cluster = make_cluster()
        assert cluster.power_mw([1.0]) > cluster.power_mw([])

    def test_shared_frequency_domain(self):
        table = make_opp_table([400.0, 800.0])
        domain = FrequencyDomain("shared", table)
        a = Cluster("a", CoreType.CPU_BIG, 2, frequency_domain=domain)
        b = Cluster("b", CoreType.CPU_LITTLE, 2, frequency_domain=domain)
        a.set_frequency(400.0)
        assert b.frequency_mhz == 400.0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            Cluster("x", CoreType.CPU_BIG, 0, opp_table=make_opp_table([400.0]))
        with pytest.raises(ValueError):
            Cluster("x", CoreType.CPU_BIG, 1)  # neither opp_table nor domain
        with pytest.raises(ValueError):
            ClusterPerformanceParams(macs_per_cycle_per_core=0.0)
        with pytest.raises(ValueError):
            ClusterPerformanceParams(macs_per_cycle_per_core=1.0, parallel_efficiency=1.5)

    def test_snapshot_fields(self):
        snapshot = make_cluster().snapshot()
        assert snapshot["name"] == "cpu"
        assert snapshot["num_cores"] == 4
        assert snapshot["frequency_mhz"] == 1200.0


class TestSoc:
    def test_cluster_lookup(self, xu3):
        assert set(xu3.cluster_names) == {"a15", "a7", "mali_gpu"}
        assert xu3.cluster("a15").core_type == CoreType.CPU_BIG
        with pytest.raises(KeyError):
            xu3.cluster("npu")

    def test_clusters_of_type(self, xu3):
        assert [c.name for c in xu3.clusters_of_type(CoreType.GPU)] == ["mali_gpu"]
        assert xu3.has_gpu
        assert not xu3.has_npu

    def test_all_cores_and_core_lookup(self, xu3):
        assert len(xu3.all_cores) == 9  # 4 + 4 + 1
        assert xu3.core("a7-3").cluster_name == "a7"
        with pytest.raises(KeyError):
            xu3.core("missing-0")

    def test_release_owner_spans_clusters(self, xu3):
        xu3.cluster("a15").reserve_cores(2, "app")
        xu3.cluster("a7").reserve_cores(1, "app")
        assert xu3.release_owner("app") == 3

    def test_memory_accounting(self, xu3):
        free_before = xu3.free_memory_mb
        xu3.allocate_memory(100.0)
        assert xu3.free_memory_mb == pytest.approx(free_before - 100.0)
        xu3.free_memory(100.0)
        assert xu3.free_memory_mb == pytest.approx(free_before)

    def test_memory_overcommit_raises(self, xu3):
        with pytest.raises(MemoryError):
            xu3.allocate_memory(xu3.memory.capacity_mb + 1.0)

    def test_total_power_increases_with_load(self, xu3):
        idle = xu3.idle_power_mw()
        busy = xu3.total_power_mw({"a15": [1.0, 1.0, 1.0, 1.0]})
        assert busy > idle > 0.0

    def test_duplicate_cluster_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Soc("x", [make_cluster("c"), make_cluster("c")])

    def test_invalid_memory_spec(self):
        with pytest.raises(ValueError):
            MemorySpec(capacity_mb=0.0)

    def test_snapshot_contains_thermal_state(self, xu3):
        snapshot = xu3.snapshot()
        assert snapshot["name"] == "odroid_xu3"
        assert "temperature_c" in snapshot
        assert set(snapshot["clusters"]) == set(xu3.cluster_names)


class TestPresets:
    def test_registry_builds_every_preset(self):
        for name in PRESET_BUILDERS:
            soc = build_preset(name)
            assert soc.name == name
            assert soc.clusters

    def test_unknown_preset_raises_keyerror_listing_names(self):
        with pytest.raises(KeyError, match="unknown platform preset 'pixel9000'.*odroid_xu3"):
            build_preset("pixel9000")

    def test_near_miss_preset_gets_a_suggestion(self):
        with pytest.raises(KeyError, match="did you mean 'jetson_nano'"):
            build_preset("jetson_nanoo")

    def test_preset_summaries_expose_topology(self):
        from repro.platforms import preset_summaries

        summaries = preset_summaries()
        assert set(summaries) == set(PRESET_BUILDERS)
        xu3 = summaries["odroid_xu3"]
        assert xu3["calibrated"] is True
        assert xu3["total_cores"] == 9  # 4x A15 + 4x A7 + Mali
        assert xu3["clusters"]["a15"] == {"core_type": "cpu_big", "num_cores": 4}
        assert summaries["kirin990_like"]["calibrated"] is False
        for info in summaries.values():
            assert info["summary"]
            assert info["total_cores"] == sum(
                payload["num_cores"] for payload in info["clusters"].values()
            )

    def test_odroid_xu3_matches_fig4_frequency_grids(self):
        soc = odroid_xu3()
        assert len(soc.cluster("a15").available_frequencies()) == 17
        assert len(soc.cluster("a7").available_frequencies()) == 12
        assert soc.cluster("a15").num_cores == 4
        assert soc.cluster("a7").num_cores == 4

    def test_jetson_nano_has_gpu_and_a57(self):
        soc = jetson_nano()
        assert soc.has_gpu
        assert soc.cluster("a57").num_cores == 4

    def test_flagship_presets_match_section2_descriptions(self):
        kirin = kirin990_like()
        # Kirin 990: 8 CPU cores of three types, GPU, tri-core NPU.
        cpu_cores = sum(c.num_cores for c in kirin.clusters if c.core_type.is_cpu)
        assert cpu_cores == 8
        assert kirin.has_npu
        assert kirin.cluster("npu").num_cores == 3

        a13 = a13_like()
        # A13: 6 CPU cores of two types, GPU, 8-core NPU.
        cpu_cores = sum(c.num_cores for c in a13.clusters if c.core_type.is_cpu)
        assert cpu_cores == 6
        assert a13.cluster("npu").num_cores == 8

    def test_big_cluster_outperforms_little_at_same_frequency(self):
        soc = odroid_xu3()
        a15, a7 = soc.cluster("a15"), soc.cluster("a7")
        a15.set_frequency(1000.0)
        a7.set_frequency(1000.0)
        assert a15.peak_macs_per_second(1) > a7.peak_macs_per_second(1)
        # ... but also draws more power.
        assert a15.power_mw([1.0]) > a7.power_mw([1.0])
