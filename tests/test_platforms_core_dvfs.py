"""Tests for core descriptors and DVFS primitives."""

import pytest

from repro.platforms.core import Core, CoreType
from repro.platforms.dvfs import (
    FrequencyDomain,
    OperatingPerformancePoint,
    OPPTable,
    make_opp_table,
)


class TestCoreType:
    def test_cpu_flavours_are_cpus(self):
        assert CoreType.CPU_BIG.is_cpu
        assert CoreType.CPU_MID.is_cpu
        assert CoreType.CPU_LITTLE.is_cpu

    def test_accelerators_are_not_cpus(self):
        for core_type in (CoreType.GPU, CoreType.NPU, CoreType.DSP, CoreType.FPGA):
            assert core_type.is_accelerator
            assert not core_type.is_cpu


class TestCore:
    def test_reserve_and_release(self):
        core = Core("a15-0", CoreType.CPU_BIG)
        assert core.is_free
        core.reserve("dnn1")
        assert not core.is_free
        assert core.reserved_by == "dnn1"
        core.release("dnn1")
        assert core.is_free

    def test_reserve_is_idempotent_for_same_owner(self):
        core = Core("a15-0", CoreType.CPU_BIG)
        core.reserve("dnn1")
        core.reserve("dnn1")
        assert core.reserved_by == "dnn1"

    def test_reserve_conflict_raises(self):
        core = Core("a15-0", CoreType.CPU_BIG)
        core.reserve("dnn1")
        with pytest.raises(RuntimeError, match="already reserved"):
            core.reserve("dnn2")

    def test_release_by_wrong_owner_raises(self):
        core = Core("a15-0", CoreType.CPU_BIG)
        core.reserve("dnn1")
        with pytest.raises(RuntimeError):
            core.release("dnn2")

    def test_offline_core_cannot_be_reserved(self):
        core = Core("a15-0", CoreType.CPU_BIG)
        core.set_online(False)
        with pytest.raises(RuntimeError, match="offline"):
            core.reserve("dnn1")

    def test_powering_down_drops_reservation(self):
        core = Core("a15-0", CoreType.CPU_BIG)
        core.reserve("dnn1")
        core.set_online(False)
        assert core.reserved_by is None


class TestOPPTable:
    def test_sorted_and_queryable(self):
        table = make_opp_table([800.0, 200.0, 1400.0])
        assert table.frequencies_mhz == [200.0, 800.0, 1400.0]
        assert table.min_frequency_mhz == 200.0
        assert table.max_frequency_mhz == 1400.0
        assert table.contains_frequency(800.0)
        assert not table.contains_frequency(801.0)

    def test_voltage_monotone_in_frequency(self):
        table = make_opp_table([float(f) for f in range(200, 1801, 100)])
        voltages = [p.voltage_v for p in table]
        assert voltages == sorted(voltages)

    def test_voltage_exponent_keeps_endpoints(self):
        linear = make_opp_table([200.0, 1000.0, 1800.0], 0.9, 1.3, voltage_exponent=1.0)
        convex = make_opp_table([200.0, 1000.0, 1800.0], 0.9, 1.3, voltage_exponent=2.0)
        assert linear.voltage_at(200.0) == convex.voltage_at(200.0)
        assert linear.voltage_at(1800.0) == convex.voltage_at(1800.0)
        assert convex.voltage_at(1000.0) < linear.voltage_at(1000.0)

    def test_nearest_and_bounds(self):
        table = make_opp_table([200.0, 600.0, 1000.0])
        assert table.nearest(590.0).frequency_mhz == 600.0
        assert table.at_or_above(601.0).frequency_mhz == 1000.0
        assert table.at_or_below(599.0).frequency_mhz == 200.0
        assert table.at_or_above(2000.0).frequency_mhz == 1000.0
        assert table.at_or_below(100.0).frequency_mhz == 200.0

    def test_step_clamps_at_edges(self):
        table = make_opp_table([200.0, 600.0, 1000.0])
        assert table.step(200.0, -1).frequency_mhz == 200.0
        assert table.step(1000.0, +5).frequency_mhz == 1000.0
        assert table.step(600.0, +1).frequency_mhz == 1000.0

    def test_point_at_unknown_frequency_raises(self):
        table = make_opp_table([200.0, 600.0])
        with pytest.raises(ValueError, match="not an operating point"):
            table.point_at(500.0)

    def test_duplicate_frequency_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            OPPTable(
                [
                    OperatingPerformancePoint(200.0, 0.9),
                    OperatingPerformancePoint(200.0, 0.95),
                ]
            )

    def test_decreasing_voltage_rejected(self):
        with pytest.raises(ValueError, match="voltage"):
            OPPTable(
                [
                    OperatingPerformancePoint(200.0, 1.0),
                    OperatingPerformancePoint(400.0, 0.9),
                ]
            )

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            OPPTable([])

    def test_invalid_opp_rejected(self):
        with pytest.raises(ValueError):
            OperatingPerformancePoint(0.0, 1.0)
        with pytest.raises(ValueError):
            OperatingPerformancePoint(100.0, -0.1)


class TestFrequencyDomain:
    def test_defaults_to_max_frequency(self):
        domain = FrequencyDomain("d", make_opp_table([200.0, 600.0, 1000.0]))
        assert domain.current_frequency_mhz == 1000.0

    def test_set_frequency_counts_transitions(self):
        domain = FrequencyDomain("d", make_opp_table([200.0, 600.0, 1000.0]))
        latency = domain.set_frequency(600.0)
        assert latency == domain.transition_latency_us
        assert domain.transition_count == 1
        # Setting the same frequency again is free.
        assert domain.set_frequency(600.0) == 0.0
        assert domain.transition_count == 1

    def test_set_invalid_frequency_raises(self):
        domain = FrequencyDomain("d", make_opp_table([200.0, 600.0]))
        with pytest.raises(ValueError):
            domain.set_frequency(500.0)

    def test_set_nearest_frequency(self):
        domain = FrequencyDomain("d", make_opp_table([200.0, 600.0, 1000.0]))
        domain.set_nearest_frequency(640.0)
        assert domain.current_frequency_mhz == 600.0

    def test_invalid_initial_frequency_rejected(self):
        with pytest.raises(ValueError):
            FrequencyDomain("d", make_opp_table([200.0, 600.0]), current_frequency_mhz=300.0)
