"""Tests for the power and thermal models."""

import pytest

from repro.platforms.power import (
    ClusterPowerModel,
    PowerModelParams,
    dynamic_power_mw,
    static_power_mw,
)
from repro.platforms.thermal import ThermalModel, ThermalParams


class TestDynamicPower:
    def test_scales_linearly_with_frequency_and_utilisation(self):
        base = dynamic_power_mw(0.5, 1.0, 1000.0, 1.0)
        assert dynamic_power_mw(0.5, 1.0, 2000.0, 1.0) == pytest.approx(2 * base)
        assert dynamic_power_mw(0.5, 1.0, 1000.0, 0.5) == pytest.approx(0.5 * base)

    def test_scales_quadratically_with_voltage(self):
        low = dynamic_power_mw(0.5, 1.0, 1000.0, 1.0)
        high = dynamic_power_mw(0.5, 1.2, 1000.0, 1.0)
        assert high == pytest.approx(low * 1.44)

    def test_invalid_utilisation_rejected(self):
        with pytest.raises(ValueError):
            dynamic_power_mw(0.5, 1.0, 1000.0, 1.5)


class TestStaticPower:
    def test_grows_with_temperature(self):
        params = PowerModelParams(ceff_mw_per_mhz_v2=0.5, static_mw=100.0)
        cold = static_power_mw(params, 1.0, 25.0)
        hot = static_power_mw(params, 1.0, 85.0)
        assert hot > cold

    def test_scales_with_voltage(self):
        params = PowerModelParams(ceff_mw_per_mhz_v2=0.5, static_mw=100.0, nominal_voltage_v=1.0)
        assert static_power_mw(params, 1.2, params.reference_temperature_c) == pytest.approx(120.0)

    def test_reference_point(self):
        params = PowerModelParams(ceff_mw_per_mhz_v2=0.5, static_mw=100.0)
        assert static_power_mw(params, 1.0, params.reference_temperature_c) == pytest.approx(100.0)


class TestClusterPowerModel:
    def test_idle_cores_draw_less_than_busy_cores(self):
        model = ClusterPowerModel(PowerModelParams(ceff_mw_per_mhz_v2=0.5, static_mw=100.0))
        busy = model.cluster_power_mw(1.0, 1000.0, [1.0], online_cores=1)
        idle = model.cluster_power_mw(1.0, 1000.0, [], online_cores=1)
        assert idle < busy

    def test_more_busy_cores_draw_more_power(self):
        model = ClusterPowerModel(PowerModelParams(ceff_mw_per_mhz_v2=0.5, static_mw=100.0))
        one = model.cluster_power_mw(1.0, 1000.0, [1.0], online_cores=4)
        four = model.cluster_power_mw(1.0, 1000.0, [1.0] * 4, online_cores=4)
        assert four > one

    def test_too_many_utilisation_samples_rejected(self):
        model = ClusterPowerModel(PowerModelParams(ceff_mw_per_mhz_v2=0.5, static_mw=100.0))
        with pytest.raises(ValueError):
            model.cluster_power_mw(1.0, 1000.0, [1.0, 1.0], online_cores=1)

    def test_energy_conversion(self):
        model = ClusterPowerModel(PowerModelParams(ceff_mw_per_mhz_v2=0.5, static_mw=100.0))
        # 1000 mW for 1000 ms is 1 J = 1000 mJ.
        assert model.energy_mj(1000.0, 1000.0) == pytest.approx(1000.0)

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            PowerModelParams(ceff_mw_per_mhz_v2=-1.0, static_mw=100.0)
        with pytest.raises(ValueError):
            PowerModelParams(ceff_mw_per_mhz_v2=1.0, static_mw=-5.0)
        with pytest.raises(ValueError):
            PowerModelParams(ceff_mw_per_mhz_v2=1.0, static_mw=5.0, idle_fraction=1.5)


class TestThermalModel:
    def test_heats_up_under_power_and_cools_down_without(self):
        model = ThermalModel(ThermalParams())
        start = model.temperature_c
        model.step(5000.0, 10000.0)
        heated = model.temperature_c
        assert heated > start
        model.step(0.0, 60000.0)
        assert model.temperature_c < heated

    def test_never_cools_below_ambient(self):
        params = ThermalParams(ambient_c=25.0)
        model = ThermalModel(params)
        model.step(0.0, 120000.0)
        assert model.temperature_c >= params.ambient_c - 1e-6

    def test_steady_state_formula(self):
        params = ThermalParams(thermal_resistance_c_per_w=10.0, ambient_c=25.0)
        model = ThermalModel(params)
        assert model.steady_state_temperature_c(2000.0) == pytest.approx(45.0)

    def test_converges_to_steady_state(self):
        params = ThermalParams(thermal_resistance_c_per_w=10.0, thermal_capacitance_j_per_c=1.0)
        model = ThermalModel(params)
        model.step(3000.0, 200000.0)  # many time constants
        assert model.temperature_c == pytest.approx(model.steady_state_temperature_c(3000.0), abs=0.5)

    def test_throttle_hysteresis(self):
        params = ThermalParams(
            thermal_resistance_c_per_w=10.0,
            thermal_capacitance_j_per_c=1.0,
            throttle_threshold_c=60.0,
            throttle_release_c=50.0,
        )
        model = ThermalModel(params)
        model.step(5000.0, 100000.0)  # steady state 75 C -> throttling
        assert model.throttling
        # Cool a little but stay above the release temperature: still throttled.
        model.step(3000.0, 3000.0)
        assert model.temperature_c > params.throttle_release_c
        assert model.throttling
        # Cool below the release threshold: throttling clears.
        model.step(0.0, 200000.0)
        assert not model.throttling

    def test_sustainable_power(self):
        params = ThermalParams(
            thermal_resistance_c_per_w=10.0, ambient_c=25.0, throttle_threshold_c=85.0
        )
        model = ThermalModel(params)
        sustainable = model.sustainable_power_mw()
        assert sustainable == pytest.approx(6000.0)
        assert model.steady_state_temperature_c(sustainable) <= params.throttle_threshold_c + 1e-6

    def test_headroom_and_reset(self):
        model = ThermalModel(ThermalParams())
        initial_headroom = model.headroom_c()
        model.step(8000.0, 20000.0)
        assert model.headroom_c() < initial_headroom
        model.reset()
        assert model.temperature_c == model.params.ambient_c
        assert not model.throttling

    def test_history_recorded_when_timestamped(self):
        model = ThermalModel(ThermalParams())
        model.step(1000.0, 100.0, time_ms=100.0)
        model.step(1000.0, 100.0, time_ms=200.0)
        assert len(model.history) == 2
        assert model.history[0][0] == 100.0

    def test_invalid_inputs_rejected(self):
        model = ThermalModel(ThermalParams())
        with pytest.raises(ValueError):
            model.step(-1.0, 100.0)
        with pytest.raises(ValueError):
            model.step(100.0, -1.0)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            ThermalParams(thermal_resistance_c_per_w=0.0)
        with pytest.raises(ValueError):
            ThermalParams(throttle_threshold_c=70.0, throttle_release_c=80.0)
        with pytest.raises(ValueError):
            ThermalParams(critical_c=50.0, throttle_threshold_c=85.0)
