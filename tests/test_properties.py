"""Property-based tests (hypothesis) on core models and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnn.accuracy import AccuracyModel
from repro.dnn.dynamic import scale_network_width
from repro.dnn.zoo import cifar_group_cnn
from repro.platforms.dvfs import make_opp_table
from repro.platforms.power import ClusterPowerModel, PowerModelParams
from repro.platforms.thermal import ThermalModel, ThermalParams
from repro.rtm.operating_points import OperatingPoint, pareto_front
from repro.workloads.requirements import MetricSample, Requirements

# The reference network is module-level so hypothesis examples do not rebuild it.
_REFERENCE = cifar_group_cnn()
_ACCURACY = AccuracyModel()


class TestAccuracyProperties:
    @given(a=st.floats(0.0, 1.0), b=st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_accuracy_monotone(self, a, b):
        low, high = sorted((a, b))
        assert _ACCURACY.top1(low) <= _ACCURACY.top1(high) + 1e-9

    @given(fraction=st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_accuracy_bounded(self, fraction):
        accuracy = _ACCURACY.top1(fraction)
        assert 0.0 <= accuracy <= 100.0
        assert _ACCURACY.confidence(fraction) <= 99.0


class TestWidthScalingProperties:
    @given(fraction=st.sampled_from([0.25, 0.5, 0.75, 1.0]), granularity=st.sampled_from([2, 4, 8]))
    @settings(max_examples=20, deadline=None)
    def test_scaled_network_never_exceeds_full(self, fraction, granularity):
        scaled = scale_network_width(_REFERENCE, fraction, granularity=granularity)
        assert scaled.total_macs() <= _REFERENCE.total_macs()
        assert scaled.total_params() <= _REFERENCE.total_params()
        assert scaled.num_classes == _REFERENCE.num_classes

    @given(
        fractions=st.lists(
            st.sampled_from([0.25, 0.5, 0.75, 1.0]), min_size=2, max_size=4, unique=True
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_macs_monotone_in_fraction(self, fractions):
        ordered = sorted(fractions)
        macs = [scale_network_width(_REFERENCE, f, granularity=4).total_macs() for f in ordered]
        assert macs == sorted(macs)


class TestPowerProperties:
    @given(
        frequency=st.floats(100.0, 3000.0),
        voltage=st.floats(0.6, 1.4),
        utilisation=st.floats(0.0, 1.0),
        temperature=st.floats(20.0, 100.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_cluster_power_positive_and_monotone_in_utilisation(
        self, frequency, voltage, utilisation, temperature
    ):
        model = ClusterPowerModel(PowerModelParams(ceff_mw_per_mhz_v2=0.5, static_mw=100.0))
        low = model.cluster_power_mw(voltage, frequency, [utilisation * 0.5], temperature, 1)
        high = model.cluster_power_mw(voltage, frequency, [utilisation], temperature, 1)
        assert 0.0 < low <= high + 1e-9

    @given(
        power=st.floats(0.0, 20000.0),
        duration=st.floats(1.0, 5000.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_thermal_step_bounded_by_steady_state(self, power, duration):
        params = ThermalParams()
        model = ThermalModel(params)
        steady = model.steady_state_temperature_c(power)
        model.step(power, duration)
        # Heating from ambient can never overshoot the steady-state value,
        # and cooling can never undershoot ambient.
        assert params.ambient_c - 1e-6 <= model.temperature_c <= max(steady, params.ambient_c) + 1e-6

    @given(frequencies=st.lists(st.floats(100.0, 3000.0), min_size=1, max_size=20, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_opp_table_voltage_monotone(self, frequencies):
        table = make_opp_table(frequencies)
        voltages = [p.voltage_v for p in table]
        assert all(b >= a - 1e-12 for a, b in zip(voltages, voltages[1:]))
        assert table.min_frequency_mhz == min(frequencies)
        assert table.max_frequency_mhz == max(frequencies)


def _point_strategy():
    return st.builds(
        OperatingPoint,
        cluster_name=st.sampled_from(["a15", "a7"]),
        frequency_mhz=st.sampled_from([200.0, 600.0, 1000.0, 1800.0]),
        cores=st.integers(1, 4),
        configuration=st.sampled_from([0.25, 0.5, 0.75, 1.0]),
        latency_ms=st.floats(1.0, 2000.0),
        power_mw=st.floats(50.0, 8000.0),
        energy_mj=st.floats(1.0, 500.0),
        accuracy_percent=st.floats(40.0, 95.0),
        confidence_percent=st.floats(40.0, 99.0),
    )


class TestParetoProperties:
    @given(points=st.lists(_point_strategy(), min_size=1, max_size=25))
    @settings(max_examples=50, deadline=None)
    def test_front_is_nonempty_subset_and_mutually_nondominated(self, points):
        front = pareto_front(points)
        assert front
        assert all(point in points for point in front)
        for a in front:
            for b in front:
                if a is b:
                    continue
                dominates = (
                    b.latency_ms <= a.latency_ms
                    and b.energy_mj <= a.energy_mj
                    and b.accuracy_percent >= a.accuracy_percent
                    and (
                        b.latency_ms < a.latency_ms
                        or b.energy_mj < a.energy_mj
                        or b.accuracy_percent > a.accuracy_percent
                    )
                )
                assert not dominates

    @given(points=st.lists(_point_strategy(), min_size=1, max_size=25))
    @settings(max_examples=50, deadline=None)
    def test_every_excluded_point_is_dominated(self, points):
        front = pareto_front(points)
        for point in points:
            if point in front:
                continue
            assert any(
                other.latency_ms <= point.latency_ms
                and other.energy_mj <= point.energy_mj
                and other.accuracy_percent >= point.accuracy_percent
                for other in front
            )


class TestParetoAlgebraicProperties:
    """Structural laws of pareto_front, independent of the objective set."""

    @given(points=st.lists(_point_strategy(), min_size=1, max_size=25))
    @settings(max_examples=50, deadline=None)
    def test_idempotent(self, points):
        front = pareto_front(points)
        assert pareto_front(front) == front

    @given(
        points=st.lists(_point_strategy(), min_size=1, max_size=25),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_order_insensitive_as_a_set(self, points, seed):
        import random
        from dataclasses import astuple

        shuffled = list(points)
        random.Random(seed).shuffle(shuffled)
        original = pareto_front(points)
        reordered = pareto_front(shuffled)
        assert sorted(original, key=astuple) == sorted(reordered, key=astuple)

    @given(points=st.lists(_point_strategy(), min_size=1, max_size=25))
    @settings(max_examples=50, deadline=None)
    def test_decision_axes_front_contains_no_dominated_point(self, points):
        objectives = ("latency_ms", "energy_mj", "power_mw")
        maximise = ("accuracy_percent", "confidence_percent")
        front = pareto_front(points, objectives=objectives, maximise=maximise)
        assert front
        assert all(point in points for point in front)
        for a in front:
            for b in front:
                if a is b:
                    continue
                no_worse = all(getattr(b, m) <= getattr(a, m) for m in objectives) and all(
                    getattr(b, m) >= getattr(a, m) for m in maximise
                )
                strictly = any(getattr(b, m) < getattr(a, m) for m in objectives) or any(
                    getattr(b, m) > getattr(a, m) for m in maximise
                )
                assert not (no_worse and strictly)

    @given(points=st.lists(_point_strategy(), min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_duplicates_survive_together(self, points):
        doubled = points + points
        front = pareto_front(doubled)
        # A point never dominates its exact duplicate, so every survivor's
        # duplicate survives too.
        assert len(front) % 2 == 0 if front else True


class TestRequirementsProperties:
    @given(
        latency_limit=st.floats(1.0, 1000.0),
        latency=st.floats(0.1, 2000.0),
        accuracy_floor=st.floats(0.0, 100.0),
        accuracy=st.floats(0.0, 100.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_check_consistent_with_is_satisfied(self, latency_limit, latency, accuracy_floor, accuracy):
        requirements = Requirements(
            max_latency_ms=latency_limit, min_accuracy_percent=accuracy_floor
        )
        sample = MetricSample(latency_ms=latency, accuracy_percent=accuracy)
        violations = requirements.check(sample)
        assert requirements.is_satisfied_by(sample) == (len(violations) == 0)
        for violation in violations:
            assert violation.magnitude >= 0.0
            assert math.isfinite(violation.magnitude)
