"""Tests for the knob/monitor abstractions and the Fig 5 interfaces."""

import pytest

from repro.rtm.interfaces import ApplicationInterface, DeviceInterface
from repro.rtm.knobs import DiscreteKnob, Knob, KnobRegistry
from repro.rtm.monitors import Monitor, MonitorHistory, MonitorRegistry
from repro.workloads.requirements import MetricSample, Requirements
from repro.workloads.tasks import make_dnn_application


class TestKnob:
    def test_get_set_and_count(self):
        store = {"value": 1}
        knob = Knob(
            name="k",
            owner="app",
            getter=lambda: store["value"],
            setter=lambda v: store.update(value=v),
        )
        assert knob.value == 1
        knob.set(5)
        assert store["value"] == 5
        assert knob.write_count == 1
        assert knob.full_name == "app.k"

    def test_discrete_knob_validates_values(self):
        store = {"value": 0.25}
        knob = DiscreteKnob(
            name="configuration",
            owner="dnn1",
            getter=lambda: store["value"],
            setter=lambda v: store.update(value=v),
            values=(0.25, 0.5, 0.75, 1.0),
        )
        knob.set(0.5)
        assert store["value"] == 0.5
        with pytest.raises(ValueError, match="not an allowed value"):
            knob.set(0.6)
        knob.set_nearest(0.6)
        assert store["value"] == 0.5
        assert knob.min_value == 0.25
        assert knob.max_value == 1.0

    def test_discrete_knob_requires_values(self):
        with pytest.raises(ValueError):
            DiscreteKnob(name="k", owner="o", getter=lambda: 1, setter=lambda v: None, values=())

    def test_registry_lookup_and_duplicates(self):
        registry = KnobRegistry()
        knob = Knob(name="k", owner="app", getter=lambda: 1, setter=lambda v: None)
        registry.register(knob)
        assert registry.get("app", "k") is knob
        assert registry.for_owner("app") == [knob]
        assert "app.k" in registry
        assert len(registry) == 1
        with pytest.raises(ValueError):
            registry.register(knob)
        with pytest.raises(KeyError):
            registry.get("app", "missing")


class TestMonitor:
    def test_read_and_full_name(self):
        monitor = Monitor(name="latency_ms", owner="dnn1", reader=lambda: 42.0, unit="ms")
        assert monitor.read() == 42.0
        assert monitor.full_name == "dnn1.latency_ms"

    def test_history_bounded_and_statistics(self):
        history = MonitorHistory(max_samples=3)
        for index in range(5):
            history.record(float(index), float(index))
        assert len(history) == 3
        assert history.latest == 4.0
        assert history.mean() == pytest.approx(3.0)
        assert history.mean(window=2) == pytest.approx(3.5)

    def test_registry_sampling_records_history(self):
        registry = MonitorRegistry()
        value = {"v": 1.0}
        registry.register(Monitor(name="m", owner="o", reader=lambda: value["v"]))
        registry.register(Monitor(name="none", owner="o", reader=lambda: None))
        readings = registry.sample_all(time_ms=0.0)
        assert readings["o.m"] == 1.0
        assert readings["o.none"] is None
        value["v"] = 2.0
        registry.sample_all(time_ms=1.0)
        assert registry.history("o", "m").mean() == pytest.approx(1.5)
        # Monitors returning None do not pollute the history.
        assert len(registry.history("o", "none")) == 0

    def test_registry_duplicate_and_missing(self):
        registry = MonitorRegistry()
        monitor = Monitor(name="m", owner="o", reader=lambda: 1.0)
        registry.register(monitor)
        with pytest.raises(ValueError):
            registry.register(monitor)
        with pytest.raises(KeyError):
            registry.get("o", "missing")


class TestApplicationInterface:
    def test_exposes_configuration_knob_and_monitors(self, trained_dnn):
        app = make_dnn_application("dnn1", trained_dnn, Requirements(target_fps=10.0))
        interface = ApplicationInterface(app)
        assert interface.app_id == "dnn1"
        assert interface.knobs.get("dnn1", "configuration") is interface.configuration_knob
        accuracy = interface.monitors.get("dnn1", "accuracy_percent").read()
        assert accuracy == pytest.approx(app.accuracy_of(app.dynamic_dnn.active_fraction))
        # Latency monitor has no sample yet.
        assert interface.monitors.get("dnn1", "latency_ms").read() is None

    def test_setting_knob_changes_accuracy_monitor(self, trained_dnn):
        app = make_dnn_application("dnn_knob", trained_dnn, Requirements(target_fps=10.0))
        interface = ApplicationInterface(app)
        original = app.dynamic_dnn.active_fraction
        try:
            interface.set_configuration(0.25)
            assert app.dynamic_dnn.active_fraction == 0.25
            assert interface.monitors.get("dnn_knob", "accuracy_percent").read() == pytest.approx(56.0)
        finally:
            app.dynamic_dnn.set_configuration(original)

    def test_report_sample_feeds_monitors(self, trained_dnn):
        app = make_dnn_application("dnn1", trained_dnn, Requirements(target_fps=10.0))
        interface = ApplicationInterface(app)
        interface.report_sample(MetricSample(latency_ms=12.5, fps=30.0))
        assert interface.monitors.get("dnn1", "latency_ms").read() == 12.5
        assert interface.monitors.get("dnn1", "fps").read() == 30.0


class TestDeviceInterface:
    def test_exposes_frequency_knobs_per_cluster(self, xu3):
        device = DeviceInterface(xu3)
        for cluster in xu3.clusters:
            knob = device.knobs.get(cluster.name, "frequency_mhz")
            assert knob.value == cluster.frequency_mhz
        device.set_frequency("a15", 1000.0)
        assert xu3.cluster("a15").frequency_mhz == 1000.0

    def test_online_cores_knob_controls_dpm(self, xu3):
        device = DeviceInterface(xu3)
        device.knobs.get("a15", "online_cores").set(2)
        assert len(xu3.cluster("a15").online_cores) == 2
        device.knobs.get("a15", "online_cores").set(4)
        assert len(xu3.cluster("a15").online_cores) == 4

    def test_temperature_and_power_monitors(self, xu3):
        device = DeviceInterface(xu3)
        assert device.temperature_c() == pytest.approx(xu3.thermal.temperature_c)
        total = device.monitors.get("odroid_xu3", "total_power_mw").read()
        assert total > 0
        device.report_utilisation("a15", 1.0)
        busy = device.monitors.get("odroid_xu3", "total_power_mw").read()
        assert busy > total

    def test_invalid_utilisation_rejected(self, xu3):
        device = DeviceInterface(xu3)
        with pytest.raises(ValueError):
            device.report_utilisation("a15", 1.5)
