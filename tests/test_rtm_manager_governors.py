"""Tests for the runtime manager, the multi-app allocator and the governors."""

import pytest

from repro.data.measurements import CASE_STUDY_BUDGETS
from repro.rtm.governors import (
    ConservativeGovernor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
    make_governor,
)
from repro.rtm.manager import RTMConfig, RuntimeManager
from repro.rtm.multi_app import MultiAppAllocator
from repro.rtm.policies import MaxAccuracyUnderBudget, MinEnergyUnderConstraints
from repro.rtm.state import (
    AppRuntimeState,
    MapApplication,
    Mapping,
    SetConfiguration,
    SetFrequency,
    SystemState,
)
from repro.workloads.requirements import Requirements
from repro.workloads.tasks import make_arvr_application, make_dnn_application


def make_state(xu3, apps, throttling=False):
    return SystemState(
        time_ms=0.0,
        soc=xu3,
        apps={state.app_id: state for state in apps},
        throttling=throttling,
    )


class TestCaseStudySelection:
    """The Section IV case-study budgets must reproduce the paper's choices."""

    @pytest.mark.parametrize("budget,expected", sorted(CASE_STUDY_BUDGETS.items()))
    def test_budget_selects_paper_configuration(self, budget, expected, trained_dnn, xu3):
        latency_ms, energy_mj = budget
        manager = RuntimeManager()
        point = manager.select_operating_point(
            trained_dnn,
            xu3,
            Requirements(max_latency_ms=latency_ms, max_energy_mj=energy_mj),
            clusters=["a15", "a7"],
            core_counts=[1],
        )
        assert point is not None
        assert point.cluster_name == expected["cluster"]
        assert point.configuration == pytest.approx(expected["configuration"])
        # The selected point genuinely meets the budget.
        assert point.latency_ms <= latency_ms
        assert point.energy_mj <= energy_mj

    def test_explain_reports_budget_checks(self, trained_dnn, xu3):
        manager = RuntimeManager()
        requirements = Requirements(max_latency_ms=400.0, max_energy_mj=100.0)
        point = manager.select_operating_point(
            trained_dnn, xu3, requirements, clusters=["a15", "a7"], core_counts=[1]
        )
        explanation = manager.explain(point, requirements)
        assert explanation["latency_ok"] and explanation["energy_ok"]

    def test_explain_reports_every_metric_and_limit(self, trained_dnn, xu3):
        manager = RuntimeManager()
        requirements = Requirements(
            max_latency_ms=400.0, max_energy_mj=100.0, min_accuracy_percent=60.0
        )
        point = manager.select_operating_point(
            trained_dnn, xu3, requirements, clusters=["a15", "a7"], core_counts=[1]
        )
        explanation = manager.explain(point, requirements)
        assert explanation["operating_point"] == point.describe()
        assert explanation["latency_ms"] == point.latency_ms
        assert explanation["latency_limit_ms"] == 400.0
        assert explanation["energy_mj"] == point.energy_mj
        assert explanation["energy_limit_mj"] == 100.0
        assert explanation["accuracy_percent"] == point.accuracy_percent
        assert explanation["accuracy_floor_percent"] == 60.0
        assert explanation["accuracy_ok"]
        assert explanation["power_mw"] == point.power_mw
        assert explanation["power_limit_mw"] is None

    def test_explain_flags_violated_budgets(self, trained_dnn, xu3):
        manager = RuntimeManager()
        # A budget nothing can meet: the policy degrades to the least-bad
        # point, and explain() must say which checks that point fails.
        requirements = Requirements(max_latency_ms=0.001, max_energy_mj=0.001)
        point = manager.select_operating_point(
            trained_dnn, xu3, requirements, clusters=["a15", "a7"], core_counts=[1]
        )
        explanation = manager.explain(point, requirements)
        assert not explanation["latency_ok"]
        assert not explanation["energy_ok"]
        # No accuracy floor was given, so the accuracy check passes vacuously.
        assert explanation["accuracy_ok"]

    def test_explain_treats_missing_limits_as_satisfied(self, trained_dnn, xu3):
        manager = RuntimeManager()
        requirements = Requirements()
        point = manager.select_operating_point(trained_dnn, xu3, requirements)
        explanation = manager.explain(point, requirements)
        assert explanation["latency_ok"] and explanation["energy_ok"]
        assert explanation["latency_limit_ms"] is None
        assert explanation["energy_limit_mj"] is None

    def test_select_without_dvfs_uses_current_frequencies(self, trained_dnn, xu3):
        xu3.cluster("a15").set_frequency(1000.0)
        xu3.cluster("a7").set_frequency(800.0)
        manager = RuntimeManager(config=RTMConfig(enable_dvfs=False))
        point = manager.select_operating_point(
            trained_dnn,
            xu3,
            Requirements(max_latency_ms=2000.0),
            clusters=["a15", "a7"],
        )
        assert point is not None
        current = {c.name: c.frequency_mhz for c in xu3.clusters}
        assert point.frequency_mhz == current[point.cluster_name]

    def test_select_without_dvfs_tracks_frequency_changes(self, trained_dnn, xu3):
        manager = RuntimeManager(config=RTMConfig(enable_dvfs=False))
        requirements = Requirements(max_latency_ms=2000.0)
        xu3.cluster("a15").set_frequency(1800.0)
        fast = manager.select_operating_point(
            trained_dnn, xu3, requirements, clusters=["a15"]
        )
        xu3.cluster("a15").set_frequency(200.0)
        slow = manager.select_operating_point(
            trained_dnn, xu3, requirements, clusters=["a15"]
        )
        assert fast is not None and slow is not None
        assert fast.frequency_mhz == 1800.0
        assert slow.frequency_mhz == 200.0
        assert slow.latency_ms > fast.latency_ms

    def test_select_without_dnn_scaling_keeps_full_model(self, trained_dnn, xu3):
        manager = RuntimeManager(config=RTMConfig(enable_dnn_scaling=False))
        # An energy budget that would normally push the policy to compress.
        point = manager.select_operating_point(
            trained_dnn,
            xu3,
            Requirements(max_energy_mj=40.0, max_latency_ms=2000.0),
            clusters=["a15", "a7"],
        )
        assert point is not None
        assert point.configuration == 1.0

    def test_select_with_dnn_scaling_can_compress(self, trained_dnn, xu3):
        scaling = RuntimeManager().select_operating_point(
            trained_dnn,
            xu3,
            Requirements(max_latency_ms=60.0, max_energy_mj=30.0),
            clusters=["a15", "a7"],
        )
        assert scaling is not None
        assert scaling.configuration < 1.0


class TestRuntimeManagerDecide:
    def test_places_single_app_and_meets_requirements(self, trained_dnn, xu3):
        app = make_dnn_application("dnn1", trained_dnn, Requirements(target_fps=5.0))
        state = make_state(xu3, [AppRuntimeState(application=app)])
        manager = RuntimeManager()
        decision = manager.decide(state)
        map_actions = [a for a in decision.actions if isinstance(a, MapApplication)]
        assert len(map_actions) == 1
        assert decision.allocation.decision_for("dnn1").placed
        assert manager.total_actions == len(decision.actions)

    def test_two_apps_do_not_overcommit_a_cluster(self, trained_dnn, xu3):
        apps = [
            AppRuntimeState(
                application=make_dnn_application(
                    f"dnn{i}", trained_dnn, Requirements(target_fps=10.0, priority=i)
                )
            )
            for i in (1, 2)
        ]
        state = make_state(xu3, apps)
        decision = RuntimeManager().decide(state)
        placements = {}
        for action in decision.actions:
            if isinstance(action, MapApplication):
                placements.setdefault(action.cluster_name, 0)
                placements[action.cluster_name] += action.cores
        for cluster_name, cores in placements.items():
            assert cores <= xu3.cluster(cluster_name).num_cores

    def test_generic_app_resources_are_respected(self, trained_dnn, xu3):
        arvr = make_arvr_application("arvr")
        arvr_state = AppRuntimeState(application=arvr, mapping=Mapping("mali_gpu", cores=1))
        xu3.cluster("mali_gpu").reserve_cores(1, "arvr")
        dnn_state = AppRuntimeState(
            application=make_dnn_application("dnn1", trained_dnn, Requirements(target_fps=5.0))
        )
        state = make_state(xu3, [arvr_state, dnn_state])
        decision = RuntimeManager().decide(state)
        for action in decision.actions:
            if isinstance(action, MapApplication) and action.app_id == "dnn1":
                assert action.cluster_name != "mali_gpu"

    def test_throttling_prefers_lower_power_points(self, trained_dnn, xu3):
        app = make_dnn_application("dnn1", trained_dnn, Requirements(target_fps=2.0))
        state_cool = make_state(xu3, [AppRuntimeState(application=app)], throttling=False)
        cool_point = RuntimeManager().decide(state_cool).allocation.decision_for("dnn1").point
        state_hot = make_state(xu3, [AppRuntimeState(application=app)], throttling=True)
        hot_point = RuntimeManager().decide(state_hot).allocation.decision_for("dnn1").point
        assert hot_point.power_mw <= cool_point.power_mw + 1e-6

    def test_disabling_dnn_scaling_keeps_full_model(self, trained_dnn, xu3):
        config = RTMConfig(enable_dnn_scaling=False)
        app = make_dnn_application(
            "dnn1", trained_dnn, Requirements(target_fps=5.0, max_energy_mj=10.0)
        )
        state = make_state(xu3, [AppRuntimeState(application=app)])
        decision = RuntimeManager(config=config).decide(state)
        for action in decision.actions:
            if isinstance(action, SetConfiguration):
                assert action.configuration == 1.0

    def test_disabling_dvfs_emits_no_frequency_actions(self, trained_dnn, xu3):
        config = RTMConfig(enable_dvfs=False)
        app = make_dnn_application("dnn1", trained_dnn, Requirements(target_fps=5.0))
        state = make_state(xu3, [AppRuntimeState(application=app)])
        decision = RuntimeManager(config=config).decide(state)
        assert not [a for a in decision.actions if isinstance(a, SetFrequency)]

    def test_disabling_task_mapping_keeps_current_cluster(self, trained_dnn, xu3):
        config = RTMConfig(enable_task_mapping=False)
        app = make_dnn_application("dnn1", trained_dnn, Requirements(target_fps=5.0))
        app_state = AppRuntimeState(application=app, mapping=Mapping("a7", cores=1))
        xu3.cluster("a7").reserve_cores(1, "dnn1")
        state = make_state(xu3, [app_state])
        decision = RuntimeManager(config=config).decide(state)
        for action in decision.actions:
            if isinstance(action, MapApplication):
                assert action.cluster_name == "a7"

    def test_policy_override_changes_choice(self, trained_dnn, xu3):
        app = make_dnn_application(
            "dnn1", trained_dnn, Requirements(target_fps=5.0, min_accuracy_percent=56.0)
        )
        state = make_state(xu3, [AppRuntimeState(application=app)])
        default_point = RuntimeManager().decide(state).allocation.decision_for("dnn1").point
        override_point = (
            RuntimeManager(policy_overrides={"dnn1": MinEnergyUnderConstraints()})
            .decide(make_state(xu3, [AppRuntimeState(application=app)]))
            .allocation.decision_for("dnn1")
            .point
        )
        assert default_point.accuracy_percent >= override_point.accuracy_percent
        assert override_point.energy_mj <= default_point.energy_mj

    def test_unplaceable_app_is_reported(self, trained_dnn, xu3):
        # Reserve every core so the DNN cannot be placed anywhere.
        for cluster in xu3.clusters:
            cluster.reserve_cores(len(cluster.free_cores), "hog")
        arvr = make_arvr_application("hog")
        hog_state = AppRuntimeState(application=arvr, mapping=Mapping("mali_gpu", cores=1))
        app = make_dnn_application("dnn1", trained_dnn, Requirements(target_fps=5.0))
        allocator = MultiAppAllocator(MaxAccuracyUnderBudget(), RuntimeManager().energy_model)
        # Patch generic usage to pretend everything is taken by generic apps.
        state = make_state(xu3, [hog_state, AppRuntimeState(application=app)])
        result = allocator.allocate(state)
        # With every core reserved by others the DNN may end up unplaced (no
        # free cores are offered by any cluster).
        assert "dnn1" in result.decisions

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            RTMConfig(decision_interval_ms=0.0)
        with pytest.raises(ValueError):
            RTMConfig(max_cores_per_app=0)


class TestGovernors:
    def test_performance_governor_targets_max(self, xu3):
        governor = PerformanceGovernor()
        cluster = xu3.cluster("a15")
        cluster.set_frequency(200.0)
        target = governor.target_frequency(cluster, utilisation=0.1, throttling=False)
        assert target == cluster.opp_table.max_frequency_mhz

    def test_performance_governor_backs_off_when_throttling(self, xu3):
        governor = PerformanceGovernor()
        cluster = xu3.cluster("a15")
        target = governor.target_frequency(cluster, utilisation=1.0, throttling=True)
        assert target < cluster.opp_table.max_frequency_mhz

    def test_powersave_governor_targets_min(self, xu3):
        governor = PowersaveGovernor()
        cluster = xu3.cluster("a15")
        assert governor.target_frequency(cluster, 1.0, False) == cluster.opp_table.min_frequency_mhz

    def test_ondemand_jumps_to_max_when_busy(self, xu3):
        governor = OndemandGovernor()
        cluster = xu3.cluster("a15")
        cluster.set_frequency(600.0)
        assert governor.target_frequency(cluster, 0.95, False) == cluster.opp_table.max_frequency_mhz

    def test_ondemand_scales_down_when_idle(self, xu3):
        governor = OndemandGovernor()
        cluster = xu3.cluster("a15")
        cluster.set_frequency(1800.0)
        target = governor.target_frequency(cluster, 0.1, False)
        assert target < 1800.0

    def test_conservative_steps_one_opp(self, xu3):
        governor = ConservativeGovernor()
        cluster = xu3.cluster("a15")
        cluster.set_frequency(1000.0)
        up = governor.target_frequency(cluster, 0.95, False)
        down = governor.target_frequency(cluster, 0.1, False)
        hold = governor.target_frequency(cluster, 0.5, False)
        assert up == 1100.0
        assert down == 900.0
        assert hold == 1000.0

    def test_decide_emits_frequency_actions(self, trained_dnn, xu3):
        governor = PerformanceGovernor()
        xu3.cluster("a15").set_frequency(200.0)
        state = make_state(xu3, [])
        actions = governor.decide(state, {"a15": 1.0})
        frequencies = {a.cluster_name: a.frequency_mhz for a in actions if isinstance(a, SetFrequency)}
        assert frequencies["a15"] == xu3.cluster("a15").opp_table.max_frequency_mhz

    def test_factory(self):
        assert isinstance(make_governor("ondemand"), OndemandGovernor)
        with pytest.raises(ValueError):
            make_governor("turbo")
