"""Tests for the operating-point space, Pareto filtering and selection policies."""

import pytest

from repro.rtm.operating_points import OperatingPoint, OperatingPointSpace, pareto_front
from repro.rtm.policies import (
    POLICY_REGISTRY,
    MaxAccuracyUnderBudget,
    MaxConfidenceUnderBudget,
    MinEnergyUnderConstraints,
    MinLatencyUnderPowerCap,
    make_policy,
)
from repro.workloads.requirements import Requirements


def make_point(**overrides):
    defaults = dict(
        cluster_name="a15",
        frequency_mhz=1000.0,
        cores=1,
        configuration=1.0,
        latency_ms=100.0,
        power_mw=1000.0,
        energy_mj=100.0,
        accuracy_percent=71.2,
        confidence_percent=75.0,
    )
    defaults.update(overrides)
    return OperatingPoint(**defaults)


class TestOperatingPointSpace:
    def test_enumeration_size(self, trained_dnn, xu3, energy_model):
        space = OperatingPointSpace(trained_dnn, xu3, energy_model, clusters=["a15", "a7"])
        points = space.enumerate(core_counts=[1])
        # 4 configurations x (17 A15 + 12 A7 frequencies) = 116 points.
        assert len(points) == 4 * (17 + 12)

    def test_fig4a_points_cover_both_clusters(self, trained_dnn, xu3, energy_model):
        space = OperatingPointSpace(trained_dnn, xu3, energy_model)
        points = space.fig4a_points()
        clusters = {point.cluster_name for point in points}
        assert clusters == {"a15", "a7"}
        assert all(point.cores == 1 for point in points)

    def test_accuracy_attached_from_trained_model(self, trained_dnn, xu3, energy_model):
        space = OperatingPointSpace(trained_dnn, xu3, energy_model, clusters=["a7"])
        points = space.enumerate(configurations=[0.25], core_counts=[1])
        assert all(point.accuracy_percent == pytest.approx(56.0) for point in points)

    def test_frequency_restriction(self, trained_dnn, xu3, energy_model):
        space = OperatingPointSpace(trained_dnn, xu3, energy_model, clusters=["a15"])
        points = space.enumerate(frequencies={"a15": [1000.0]}, core_counts=[1])
        assert {point.frequency_mhz for point in points} == {1000.0}

    def test_latency_improves_with_frequency_and_cores(self, trained_dnn, xu3, energy_model):
        space = OperatingPointSpace(trained_dnn, xu3, energy_model, clusters=["a15"])
        slow = space.enumerate(configurations=[1.0], core_counts=[1], frequencies={"a15": [200.0]})[0]
        fast = space.enumerate(configurations=[1.0], core_counts=[1], frequencies={"a15": [1800.0]})[0]
        quad = space.enumerate(configurations=[1.0], core_counts=[4], frequencies={"a15": [1800.0]})[0]
        assert fast.latency_ms < slow.latency_ms
        assert quad.latency_ms < fast.latency_ms

    def test_feasible_filter(self):
        points = [
            make_point(latency_ms=50.0, energy_mj=40.0),
            make_point(latency_ms=150.0, energy_mj=40.0),
            make_point(latency_ms=50.0, energy_mj=400.0),
        ]
        feasible = OperatingPointSpace.feasible(points, max_latency_ms=100.0, max_energy_mj=100.0)
        assert feasible == [points[0]]

    def test_describe_mentions_key_fields(self):
        text = make_point(configuration=0.75).describe()
        assert "75%" in text
        assert "a15" in text

    def test_unknown_cluster_is_skipped(self, trained_dnn, xu3, energy_model):
        space = OperatingPointSpace(trained_dnn, xu3, energy_model, clusters=["npu", "a7"])
        points = space.enumerate(core_counts=[1], configurations=[1.0])
        assert {point.cluster_name for point in points} == {"a7"}


class TestParetoFront:
    def test_dominated_point_removed(self):
        good = make_point(latency_ms=50.0, energy_mj=50.0)
        dominated = make_point(latency_ms=60.0, energy_mj=60.0)
        front = pareto_front([good, dominated], maximise=())
        assert front == [good]

    def test_trade_off_points_kept(self):
        fast_hungry = make_point(latency_ms=10.0, energy_mj=200.0)
        slow_frugal = make_point(latency_ms=200.0, energy_mj=10.0)
        front = pareto_front([fast_hungry, slow_frugal], maximise=())
        assert set(front) == {fast_hungry, slow_frugal}

    def test_accuracy_axis_respected(self):
        accurate = make_point(latency_ms=100.0, energy_mj=100.0, accuracy_percent=71.2)
        small = make_point(latency_ms=50.0, energy_mj=50.0, accuracy_percent=56.0)
        front = pareto_front([accurate, small])
        assert set(front) == {accurate, small}

    def test_fig4a_front_is_subset(self, trained_dnn, xu3, energy_model):
        space = OperatingPointSpace(trained_dnn, xu3, energy_model)
        points = space.fig4a_points()
        front = pareto_front(points)
        assert 0 < len(front) <= len(points)
        front_set = {
            (p.cluster_name, p.frequency_mhz, p.configuration) for p in front
        }
        assert len(front_set) == len(front)


class TestPolicies:
    def _points(self):
        return [
            make_point(configuration=1.0, latency_ms=150.0, energy_mj=200.0, accuracy_percent=71.2),
            make_point(configuration=0.75, latency_ms=90.0, energy_mj=120.0, accuracy_percent=68.8),
            make_point(configuration=0.5, latency_ms=60.0, energy_mj=80.0, accuracy_percent=62.7,
                       confidence_percent=72.0),
            make_point(configuration=0.25, latency_ms=30.0, energy_mj=40.0, accuracy_percent=56.0,
                       confidence_percent=70.0),
        ]

    def test_max_accuracy_picks_largest_feasible(self):
        policy = MaxAccuracyUnderBudget()
        chosen = policy.select(self._points(), Requirements(max_latency_ms=100.0, max_energy_mj=130.0))
        assert chosen.configuration == 0.75

    def test_min_energy_respects_accuracy_floor(self):
        policy = MinEnergyUnderConstraints()
        chosen = policy.select(self._points(), Requirements(min_accuracy_percent=60.0))
        assert chosen.configuration == 0.5  # smallest config above the floor

    def test_min_latency_policy(self):
        policy = MinLatencyUnderPowerCap()
        chosen = policy.select(self._points(), Requirements(min_accuracy_percent=55.0))
        assert chosen.configuration == 0.25

    def test_max_confidence_policy(self):
        policy = MaxConfidenceUnderBudget()
        chosen = policy.select(self._points(), Requirements(max_latency_ms=70.0))
        assert chosen.configuration == 0.5

    def test_power_cap_excludes_hot_points(self):
        points = [
            make_point(configuration=1.0, power_mw=5000.0, accuracy_percent=71.2),
            make_point(configuration=0.5, power_mw=800.0, accuracy_percent=62.7),
        ]
        policy = MaxAccuracyUnderBudget()
        chosen = policy.select(points, Requirements(), power_cap_mw=1000.0)
        assert chosen.configuration == 0.5

    def test_graceful_degradation_when_infeasible(self):
        points = self._points()
        # Impossible requirement: 1 ms latency.  The policy must still return
        # something (the least-bad point), not None.
        policy = MaxAccuracyUnderBudget()
        chosen = policy.select(points, Requirements(max_latency_ms=1.0))
        assert chosen is not None
        assert chosen.latency_ms == min(point.latency_ms for point in points)

    def test_empty_point_list_returns_none(self):
        assert MaxAccuracyUnderBudget().select([], Requirements()) is None

    def test_registry_and_factory(self):
        assert set(POLICY_REGISTRY) == {"max_accuracy", "min_energy", "min_latency", "max_confidence"}
        assert isinstance(make_policy("min_energy"), MinEnergyUnderConstraints)
        with pytest.raises(ValueError):
            make_policy("does_not_exist")
