"""Tests for the RTM state/action vocabulary and the multi-application allocator."""

import pytest

from repro.rtm.multi_app import MultiAppAllocator
from repro.rtm.policies import MaxAccuracyUnderBudget
from repro.rtm.state import (
    AppRuntimeState,
    MapApplication,
    Mapping,
    SetConfiguration,
    SetCoresOnline,
    SetFrequency,
    SystemState,
    UnmapApplication,
)
from repro.workloads.requirements import Requirements
from repro.workloads.tasks import make_arvr_application, make_background_application, make_dnn_application


@pytest.fixture
def allocator(energy_model):
    return MultiAppAllocator(MaxAccuracyUnderBudget(), energy_model)


def make_state(soc, app_states, throttling=False, power_cap_mw=None):
    return SystemState(
        time_ms=0.0,
        soc=soc,
        apps={state.app_id: state for state in app_states},
        throttling=throttling,
        power_cap_mw=power_cap_mw,
    )


class TestStateVocabulary:
    def test_mapping_validation(self):
        mapping = Mapping("a15", cores=2, configuration=0.5)
        assert mapping.cores == 2
        with pytest.raises(ValueError):
            Mapping("a15", cores=0)
        with pytest.raises(ValueError):
            Mapping("a15", configuration=0.0)

    def test_action_validation(self):
        with pytest.raises(ValueError):
            SetConfiguration(app_id="a", configuration=1.5)
        with pytest.raises(ValueError):
            SetFrequency(cluster_name="", frequency_mhz=100.0)
        with pytest.raises(ValueError):
            SetFrequency(cluster_name="a15", frequency_mhz=0.0)
        with pytest.raises(ValueError):
            MapApplication(app_id="", cluster_name="a15")
        with pytest.raises(ValueError):
            MapApplication(app_id="a", cluster_name="a15", cores=0)
        with pytest.raises(ValueError):
            UnmapApplication(app_id="")
        with pytest.raises(ValueError):
            SetCoresOnline(cluster_name="", online_cores=1)

    def test_system_state_app_queries(self, xu3, trained_dnn):
        dnn = make_dnn_application("dnn1", trained_dnn, Requirements(target_fps=5.0, priority=2))
        other = make_dnn_application("dnn2", trained_dnn, Requirements(target_fps=5.0, priority=9))
        arvr = make_arvr_application("arvr")
        state = make_state(
            xu3,
            [
                AppRuntimeState(application=dnn),
                AppRuntimeState(application=other),
                AppRuntimeState(application=arvr),
            ],
        )
        dnn_ids = [app.app_id for app in state.dnn_apps]
        assert dnn_ids == ["dnn2", "dnn1"]  # priority order
        assert [app.app_id for app in state.other_apps] == ["arvr"]
        assert state.app("dnn1").is_dnn
        with pytest.raises(KeyError):
            state.app("ghost")


class TestMultiAppAllocator:
    def test_priority_app_gets_the_accelerator(self, allocator, xu3, trained_dnn):
        low = make_dnn_application(
            "low", trained_dnn, Requirements(target_fps=10.0, priority=1)
        )
        high = make_dnn_application(
            "high", trained_dnn, Requirements(target_fps=30.0, max_latency_ms=20.0, priority=9)
        )
        state = make_state(
            xu3, [AppRuntimeState(application=low), AppRuntimeState(application=high)]
        )
        result = allocator.allocate(state)
        high_point = result.decision_for("high").point
        low_point = result.decision_for("low").point
        # Only the Mali GPU meets a 20 ms latency bound for the full model;
        # the higher-priority application gets it.
        assert high_point.cluster_name == "mali_gpu"
        assert low_point.cluster_name != "mali_gpu"

    def test_shared_cluster_frequency_is_pinned(self, allocator, xu3, trained_dnn):
        apps = [
            AppRuntimeState(
                application=make_dnn_application(
                    f"dnn{i}",
                    trained_dnn,
                    Requirements(target_fps=5.0, priority=10 - i),
                )
            )
            for i in range(3)
        ]
        state = make_state(xu3, apps)
        result = allocator.allocate(state)
        frequency_by_cluster = {}
        for decision in result.decisions.values():
            point = decision.point
            if point is None:
                continue
            previous = frequency_by_cluster.setdefault(point.cluster_name, point.frequency_mhz)
            # Applications sharing a cluster in the same round share its frequency.
            assert previous == pytest.approx(point.frequency_mhz)

    def test_generic_frequency_floor_respected(self, allocator, xu3, trained_dnn):
        arvr = make_arvr_application("arvr", gpu_min_frequency_mhz=600.0)
        arvr_state = AppRuntimeState(application=arvr, mapping=Mapping("mali_gpu", cores=1))
        dnn = make_dnn_application("dnn1", trained_dnn, Requirements(target_fps=5.0))
        state = make_state(xu3, [arvr_state, AppRuntimeState(application=dnn)])
        floors = allocator._frequency_floors(state)
        assert floors == {"mali_gpu": 600.0}
        result = allocator.allocate(state)
        point = result.decision_for("dnn1").point
        if point is not None and point.cluster_name == "mali_gpu":
            assert point.frequency_mhz >= 600.0

    def test_power_cap_derived_from_throttling(self, allocator, xu3, trained_dnn):
        dnn = make_dnn_application("dnn1", trained_dnn, Requirements(target_fps=5.0))
        hot = make_state(xu3, [AppRuntimeState(application=dnn)], throttling=True)
        cap = allocator._power_cap_per_app(hot, num_apps=1)
        assert cap is not None and cap > 0
        cool = make_state(xu3, [AppRuntimeState(application=dnn)], throttling=False)
        assert allocator._power_cap_per_app(cool, num_apps=1) is None

    def test_explicit_power_cap_used(self, allocator, xu3, trained_dnn):
        dnn = make_dnn_application("dnn1", trained_dnn, Requirements(target_fps=5.0))
        state = make_state(
            xu3, [AppRuntimeState(application=dnn)], power_cap_mw=2000.0
        )
        cap = allocator._power_cap_per_app(state, num_apps=2)
        assert cap is not None and cap <= 2000.0

    def test_actions_only_for_changes(self, allocator, xu3, trained_dnn):
        dnn = make_dnn_application("dnn1", trained_dnn, Requirements(target_fps=5.0))
        state = make_state(xu3, [AppRuntimeState(application=dnn)])
        first = allocator.allocate(state)
        point = first.decision_for("dnn1").point
        # Install exactly the chosen operating point, then re-allocate: no new
        # mapping or configuration actions should be emitted.
        xu3.cluster(point.cluster_name).set_frequency(point.frequency_mhz)
        xu3.cluster(point.cluster_name).reserve_cores(point.cores, "dnn1")
        dnn.dynamic_dnn.set_configuration(point.configuration)
        mapped_state = make_state(
            xu3,
            [
                AppRuntimeState(
                    application=dnn,
                    mapping=Mapping(
                        point.cluster_name,
                        cores=point.cores,
                        configuration=point.configuration,
                    ),
                )
            ],
        )
        second = allocator.allocate(mapped_state)
        assert not [
            a
            for a in second.actions
            if isinstance(a, (MapApplication, SetConfiguration))
        ]

    def test_unplaced_app_gets_unmapped(self, energy_model, xu3, trained_dnn):
        allocator = MultiAppAllocator(MaxAccuracyUnderBudget(), energy_model)
        # Background tasks occupy every core of every cluster.
        hogs = []
        for index, cluster in enumerate(xu3.clusters):
            hog = make_background_application(
                f"hog{index}", cores=cluster.num_cores, core_type=cluster.core_type
            )
            cluster.reserve_cores(cluster.num_cores, hog.app_id)
            hogs.append(AppRuntimeState(application=hog, mapping=Mapping(cluster.name, cluster.num_cores)))
        dnn = make_dnn_application("dnn1", trained_dnn, Requirements(target_fps=5.0))
        dnn_state = AppRuntimeState(application=dnn, mapping=Mapping("a7", cores=1))
        state = make_state(xu3, hogs + [dnn_state])
        result = allocator.allocate(state)
        assert not result.decision_for("dnn1").placed
        assert any(isinstance(a, UnmapApplication) and a.app_id == "dnn1" for a in result.actions)
        assert result.unplaced_apps == ["dnn1"]

    def test_home_cluster_pinning_without_task_mapping(self, energy_model, xu3, trained_dnn):
        allocator = MultiAppAllocator(
            MaxAccuracyUnderBudget(), energy_model, allow_task_mapping=False
        )
        dnn = make_dnn_application("dnn1", trained_dnn, Requirements(target_fps=10.0))
        state = make_state(xu3, [AppRuntimeState(application=dnn)])
        first = allocator.allocate(state)
        home = first.decision_for("dnn1").point.cluster_name
        # The home cluster is now fully occupied by someone else.
        xu3.cluster(home).reserve_cores(len(xu3.cluster(home).free_cores), "other")
        other = make_background_application("other", cores=1)
        other_state = AppRuntimeState(
            application=other, mapping=Mapping(home, cores=len(xu3.cluster(home).cores))
        )
        second = allocator.allocate(
            make_state(xu3, [AppRuntimeState(application=dnn), other_state])
        )
        # Without the mapping knob the application cannot move elsewhere.
        assert not second.decision_for("dnn1").placed

    def test_invalid_max_cores(self, energy_model):
        with pytest.raises(ValueError):
            MultiAppAllocator(MaxAccuracyUnderBudget(), energy_model, max_cores_per_app=0)
