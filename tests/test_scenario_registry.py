"""Tests for the named-scenario registry."""

import pytest

from repro.workloads import (
    SCENARIO_BUILDERS,
    SCENARIO_REGISTRY,
    Scenario,
    build_scenario,
    register_scenario,
    scenario_summaries,
)


class TestRegistryContents:
    def test_paper_and_synthetic_scenarios_registered(self):
        expected = {
            "fig2",
            "single_dnn",
            "multi_dnn",
            "thermal_stress",
            "steady",
            "bursty",
            "rush_hour",
            "multi_app_contention",
            "accuracy_critical",
            "battery_saver",
            "mixed_criticality",
            "overload",
        }
        assert expected <= set(SCENARIO_REGISTRY)

    def test_composition_layer_registered(self):
        composition_layer = {
            "compose",
            "trace",
            "fuzzed",
            "rush_hour_then_battery_saver",
            "steady_then_overload",
            "mixed_criticality_overload",
            "battery_saver_accuracy_critical",
            "fig2_bursty",
            "double_rush_hour",
            "bursty_x2_exynos",
            "overload_slow_motion",
            "thermal_stress_jittered",
        }
        assert composition_layer <= set(SCENARIO_REGISTRY)
        assert len(SCENARIO_REGISTRY) >= 20

    def test_builders_alias_is_the_registry(self):
        assert SCENARIO_BUILDERS is SCENARIO_REGISTRY

    def test_every_entry_has_a_summary(self):
        summaries = scenario_summaries()
        assert set(summaries) == set(SCENARIO_REGISTRY)
        for name, summary in summaries.items():
            assert summary, name

    def test_every_entry_builds_a_valid_scenario(self):
        from repro.workloads import scenario_is_seeded

        for name in SCENARIO_REGISTRY:
            scenario = build_scenario(name, seed=1 if scenario_is_seeded(name) else 0)
            assert isinstance(scenario, Scenario), name
            assert scenario.duration_ms > 0, name
            assert scenario.applications, name

    def test_entries_are_zero_argument_callables(self):
        # The CLI `scenario` command and legacy callers invoke builders with
        # no arguments; every registered builder must default its parameters.
        scenario = SCENARIO_REGISTRY["steady"]()
        assert isinstance(scenario, Scenario)


class TestSeeding:
    def test_same_seed_is_deterministic(self):
        a = build_scenario("bursty", seed=3)
        b = build_scenario("bursty", seed=3)
        assert [app.app_id for app in a.applications] == [app.app_id for app in b.applications]
        assert [app.arrival_time_ms for app in a.applications] == [
            app.arrival_time_ms for app in b.applications
        ]
        assert [app.requirements.target_fps for app in a.applications] == [
            app.requirements.target_fps for app in b.applications
        ]

    def test_different_seeds_differ(self):
        a = build_scenario("bursty", seed=1)
        b = build_scenario("bursty", seed=2)
        assert [app.arrival_time_ms for app in a.applications] != [
            app.arrival_time_ms for app in b.applications
        ]

    def test_seeded_flag_marks_generator_scenarios(self):
        from repro.workloads import scenario_is_seeded

        assert scenario_is_seeded("bursty")
        assert scenario_is_seeded("steady")
        # The hand-written paper timelines ignore the seed.
        for name in ("fig2", "single_dnn", "multi_dnn", "thermal_stress"):
            assert not scenario_is_seeded(name), name
        with pytest.raises(KeyError, match="unknown scenario"):
            scenario_is_seeded("nope")

    def test_platform_name_is_forwarded(self):
        scenario = build_scenario("steady", seed=0, platform_name="jetson_nano")
        assert scenario.platform_name == "jetson_nano"
        assert scenario.build_platform().name == "jetson_nano"

    def test_platform_pinned_scenario_rejects_other_boards(self):
        # The scenario's name promises the Exynos board; running it elsewhere
        # must fail loudly instead of mislabelling the experiment.
        with pytest.raises(ValueError, match="pinned to the odroid_xu3"):
            build_scenario("bursty_x2_exynos", seed=0, platform_name="jetson_nano")


class TestErrors:
    def test_unknown_scenario_raises_with_available_names(self):
        with pytest.raises(KeyError, match="unknown scenario 'nope'.*steady"):
            build_scenario("nope")

    def test_typoed_param_raises_instead_of_vanishing(self):
        # A misspelled scenario_param used to disappear into the builder's
        # **kwargs (or surface as an unrelated TypeError deep inside); it now
        # fails loudly at the registry boundary, listing what is accepted.
        with pytest.raises(ValueError, match=r"does not accept params \['durations_ms'\]"):
            build_scenario("steady", durations_ms=5000.0)
        with pytest.raises(ValueError, match="does not accept params"):
            build_scenario("rush_hour", duration_ms=5000.0)  # takes no extras at all

    def test_accepted_params_still_forward(self):
        from repro.workloads import accepted_scenario_params

        assert "duration_ms" in (accepted_scenario_params("steady") or set())
        scenario = build_scenario("steady", seed=0, duration_ms=5000.0)
        assert scenario.duration_ms == 5000.0

    def test_seed_on_deterministic_scenario_warns(self):
        with pytest.warns(UserWarning, match="ignores seed=7"):
            build_scenario("fig2", seed=7)

    def test_seed_zero_and_seeded_scenarios_stay_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            build_scenario("fig2", seed=0)
            build_scenario("bursty", seed=7)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_scenario("steady")
            def clash(seed=0, platform_name="odroid_xu3"):
                """Duplicate of an existing name."""

    def test_docstring_required(self):
        with pytest.raises(ValueError, match="docstring"):

            @register_scenario("undocumented")
            def undocumented(seed=0, platform_name="odroid_xu3"):
                pass


class TestScenarioShapes:
    def test_mixed_criticality_has_the_critical_app(self):
        scenario = build_scenario("mixed_criticality", seed=0)
        critical = scenario.application("critical")
        assert critical.requirements.priority == 9
        assert critical.requirements.max_latency_ms == 60.0

    def test_battery_saver_budgets_every_dnn(self):
        scenario = build_scenario("battery_saver", seed=0)
        assert scenario.dnn_applications
        for app in scenario.dnn_applications:
            assert app.requirements.max_energy_mj is not None
            assert app.requirements.max_energy_mj <= 60.0

    def test_rush_hour_wave_departs(self):
        scenario = build_scenario("rush_hour", seed=0)
        wave = [app for app in scenario.applications if app.app_id.startswith("cam")]
        assert len(wave) == 3
        assert all(app.departure_time_ms == 25000.0 for app in wave)
        assert scenario.application("nav").departure_time_ms is None

    def test_overload_oversubscribes(self):
        scenario = build_scenario("overload", seed=0)
        assert len(scenario.dnn_applications) == 6
