"""Tests for the event queue, trace records and the discrete-event simulator."""

import pytest

from repro.rtm.manager import RuntimeManager
from repro.sim.engine import Simulator, SimulatorConfig, simulate_scenario
from repro.sim.events import EVENT_PRIORITY_STRUCTURAL, EventQueue
from repro.sim.trace import JobRecord, PowerSample, SimulationTrace
from repro.workloads.requirements import Requirements
from repro.workloads.scenarios import Scenario, single_dnn_scenario, thermal_stress_scenario
from repro.workloads.tasks import make_dnn_application


class TestEventQueue:
    def test_events_run_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(30.0, lambda: order.append("c"))
        queue.schedule(10.0, lambda: order.append("a"))
        queue.schedule(20.0, lambda: order.append("b"))
        queue.run_until(100.0)
        assert order == ["a", "b", "c"]
        assert queue.now_ms == 100.0

    def test_priority_breaks_ties(self):
        queue = EventQueue()
        order = []
        queue.schedule(10.0, lambda: order.append("normal"))
        queue.schedule(10.0, lambda: order.append("structural"), priority=EVENT_PRIORITY_STRUCTURAL)
        queue.run_until(100.0)
        assert order == ["structural", "normal"]

    def test_same_priority_fifo(self):
        queue = EventQueue()
        order = []
        queue.schedule(10.0, lambda: order.append(1))
        queue.schedule(10.0, lambda: order.append(2))
        queue.run_until(100.0)
        assert order == [1, 2]

    def test_events_after_horizon_not_run(self):
        queue = EventQueue()
        order = []
        queue.schedule(10.0, lambda: order.append("early"))
        queue.schedule(200.0, lambda: order.append("late"))
        executed = queue.run_until(100.0)
        assert executed == 1
        assert order == ["early"]

    def test_cancelled_event_skipped(self):
        queue = EventQueue()
        order = []
        handle = queue.schedule(10.0, lambda: order.append("cancelled"))
        queue.cancel(handle)
        queue.schedule(20.0, lambda: order.append("kept"))
        queue.run_until(100.0)
        assert order == ["kept"]

    def test_scheduling_in_past_clamped(self):
        queue = EventQueue()
        order = []
        queue.schedule(50.0, lambda: queue.schedule(10.0, lambda: order.append("late")))
        queue.run_until(100.0)
        assert order == ["late"]

    def test_events_can_schedule_followups(self):
        queue = EventQueue()
        ticks = []

        def tick(time_ms):
            ticks.append(time_ms)
            if time_ms < 50.0:
                queue.schedule(time_ms + 10.0, lambda: tick(time_ms + 10.0))

        queue.schedule(10.0, lambda: tick(10.0))
        queue.run_until(100.0)
        assert ticks == [10.0, 20.0, 30.0, 40.0, 50.0]

    def test_peek_and_len(self):
        queue = EventQueue()
        assert queue.empty
        handle = queue.schedule(10.0, lambda: None)
        assert len(queue) == 1
        assert queue.peek_time() == 10.0
        queue.cancel(handle)
        assert queue.empty


class TestEventQueueSemantics:
    """Cancellation, boundary and tie-break semantics of the event queue."""

    def test_same_time_orders_by_priority_then_sequence(self):
        queue = EventQueue()
        order = []
        queue.schedule(10.0, lambda: order.append("d1"))
        queue.schedule(10.0, lambda: order.append("s1"), priority=EVENT_PRIORITY_STRUCTURAL)
        queue.schedule(10.0, lambda: order.append("d2"))
        queue.schedule(10.0, lambda: order.append("s2"), priority=EVENT_PRIORITY_STRUCTURAL)
        queue.run_until(100.0)
        assert order == ["s1", "s2", "d1", "d2"]

    def test_sequence_tie_break_is_deterministic(self):
        def run_once():
            queue = EventQueue()
            order = []
            for label in range(8):
                queue.schedule(5.0, lambda label=label: order.append(label))
            queue.run_until(10.0)
            return order

        assert run_once() == run_once() == list(range(8))

    def test_peek_time_skips_cancelled_head(self):
        queue = EventQueue()
        first = queue.schedule(10.0, lambda: None)
        queue.schedule(20.0, lambda: None)
        queue.cancel(first)
        assert queue.peek_time() == 20.0
        assert len(queue) == 1

    def test_peek_time_none_when_all_cancelled(self):
        queue = EventQueue()
        handles = [queue.schedule(float(t), lambda: None) for t in (10, 20, 30)]
        for handle in handles:
            queue.cancel(handle)
        assert queue.peek_time() is None
        assert queue.empty
        assert len(queue) == 0

    def test_cancel_twice_is_idempotent(self):
        queue = EventQueue()
        handle = queue.schedule(10.0, lambda: None)
        queue.schedule(20.0, lambda: None)
        queue.cancel(handle)
        queue.cancel(handle)
        assert len(queue) == 1

    def test_cancel_after_execution_is_a_noop(self):
        queue = EventQueue()
        ran = []
        handle = queue.schedule(10.0, lambda: ran.append(True))
        queue.schedule(20.0, lambda: None)
        queue.run_until(15.0)
        assert ran == [True]
        queue.cancel(handle)  # already executed: must not corrupt the counter
        assert len(queue) == 1
        assert queue.run_until(100.0) == 1

    def test_cancelled_events_do_not_count_as_executed(self):
        queue = EventQueue()
        keep = []
        cancelled = queue.schedule(10.0, lambda: keep.append("no"))
        queue.schedule(10.0, lambda: keep.append("yes"))
        queue.cancel(cancelled)
        assert queue.run_until(100.0) == 1
        assert keep == ["yes"]

    def test_run_until_executes_event_exactly_at_boundary(self):
        queue = EventQueue()
        order = []
        queue.schedule(100.0, lambda: order.append("boundary"))
        executed = queue.run_until(100.0)
        assert executed == 1
        assert order == ["boundary"]
        assert queue.now_ms == 100.0

    def test_run_until_leaves_post_boundary_events_live(self):
        queue = EventQueue()
        queue.schedule(100.0 + 1e-9, lambda: None)
        assert queue.run_until(100.0) == 0
        assert len(queue) == 1
        assert queue.peek_time() == pytest.approx(100.0 + 1e-9)

    def test_boundary_event_scheduling_at_boundary_runs_in_same_pass(self):
        queue = EventQueue()
        order = []
        queue.schedule(
            100.0, lambda: (order.append("a"), queue.schedule(100.0, lambda: order.append("b")))
        )
        assert queue.run_until(100.0) == 2
        assert order == ["a", "b"]
        assert queue.now_ms == 100.0

    def test_len_stays_consistent_through_mixed_operations(self):
        queue = EventQueue()
        handles = [queue.schedule(float(t), lambda: None) for t in (10, 20, 30, 40)]
        queue.cancel(handles[1])
        assert len(queue) == 3
        queue.run_until(25.0)  # runs t=10 and t=20-cancelled is skipped
        assert len(queue) == 2
        queue.cancel(handles[2])
        assert len(queue) == 1
        assert queue.peek_time() == 40.0


class TestSimulatorConfigValidation:
    def test_rejects_non_positive_retry_interval(self):
        with pytest.raises(ValueError, match="retry_interval_ms"):
            SimulatorConfig(retry_interval_ms=0.0)
        with pytest.raises(ValueError, match="retry_interval_ms"):
            SimulatorConfig(retry_interval_ms=-5.0)

    def test_default_config_is_valid(self):
        config = SimulatorConfig()
        assert config.retry_interval_ms > 0


class TestSimulationTrace:
    def _job(self, app_id="app", violations=(), dropped=False, energy=10.0, latency=20.0):
        return JobRecord(
            app_id=app_id,
            job_index=1,
            release_ms=0.0,
            start_ms=0.0,
            finish_ms=latency,
            latency_ms=latency,
            energy_mj=energy,
            configuration=1.0,
            accuracy_percent=71.2,
            cluster="a15",
            cores=1,
            frequency_mhz=1800.0,
            violations=violations,
            dropped=dropped,
        )

    def test_violation_rate_counts_drops_and_violations(self):
        trace = SimulationTrace(duration_ms=1000.0)
        trace.record_job(self._job())
        trace.record_job(self._job(violations=("latency_ms",)))
        trace.record_job(self._job(dropped=True))
        assert trace.violation_count() == 2
        assert trace.violation_rate() == pytest.approx(2 / 3)

    def test_per_app_statistics(self):
        trace = SimulationTrace(duration_ms=2000.0)
        trace.record_job(self._job("a", energy=10.0, latency=10.0))
        trace.record_job(self._job("a", energy=30.0, latency=30.0))
        trace.record_job(self._job("b", energy=5.0))
        assert trace.total_energy_mj("a") == pytest.approx(40.0)
        assert trace.mean_latency_ms("a") == pytest.approx(20.0)
        assert trace.delivered_fps("a") == pytest.approx(1.0)
        assert trace.app_ids() == ["a", "b"]

    def test_power_statistics(self):
        trace = SimulationTrace(duration_ms=1000.0)
        trace.record_power(PowerSample(0.0, 1000.0, 40.0, False))
        trace.record_power(PowerSample(100.0, 3000.0, 80.0, True))
        assert trace.mean_power_mw() == pytest.approx(2000.0)
        assert trace.peak_temperature_c() == pytest.approx(80.0)
        assert trace.throttling_fraction() == pytest.approx(0.5)

    def test_empty_trace_statistics_are_zero(self):
        trace = SimulationTrace()
        assert trace.violation_rate() == 0.0
        assert trace.mean_latency_ms() == 0.0
        assert trace.mean_power_mw() == 0.0

    def test_summary_structure(self):
        trace = SimulationTrace(duration_ms=1000.0)
        trace.record_job(self._job())
        summary = trace.summary()
        assert summary["total_jobs"] == 1
        assert "app" in summary["per_app"]


class TestSimulator:
    def test_single_dnn_meets_requirements(self, trained_dnn):
        scenario = single_dnn_scenario(duration_ms=4000.0)
        trace = simulate_scenario(scenario, RuntimeManager())
        assert trace.violation_rate() < 0.05
        jobs = trace.completed_jobs("dnn1")
        assert jobs
        # Delivered frame rate close to the 5 fps target.
        assert trace.delivered_fps("dnn1") == pytest.approx(5.0, rel=0.2)

    def test_periodic_release_count(self, trained_dnn):
        scenario = single_dnn_scenario(duration_ms=4000.0, target_fps=10.0)
        trace = simulate_scenario(scenario, RuntimeManager())
        # 10 fps for 4 s -> about 40 releases (boundary effects allowed).
        assert 35 <= len(trace.jobs_for("dnn1")) <= 42

    def test_power_and_temperature_recorded(self, trained_dnn):
        scenario = single_dnn_scenario(duration_ms=3000.0)
        trace = simulate_scenario(scenario, RuntimeManager())
        assert len(trace.power_samples) >= 25
        assert trace.peak_temperature_c() > 25.0

    def test_jobs_record_mapping_details(self, trained_dnn):
        scenario = single_dnn_scenario(duration_ms=3000.0)
        trace = simulate_scenario(scenario, RuntimeManager())
        job = trace.completed_jobs("dnn1")[0]
        assert job.cluster in {"a15", "a7", "mali_gpu"}
        assert job.cores >= 1
        assert job.energy_mj > 0
        assert job.met_requirements

    def test_unmanaged_scenario_drops_jobs(self, trained_dnn):
        class NullManager:
            def decide(self, state):
                class _Decision:
                    actions: list = []

                return _Decision()

        scenario = single_dnn_scenario(duration_ms=2000.0)
        trace = simulate_scenario(scenario, NullManager())
        # Nothing ever maps the DNN, so every released job is dropped.
        assert all(job.dropped for job in trace.jobs_for("dnn1"))
        assert trace.violation_rate() == 1.0

    def test_thermal_stress_triggers_throttling(self):
        trace = simulate_scenario(thermal_stress_scenario(), RuntimeManager())
        assert trace.peak_temperature_c() > 80.0
        assert trace.throttling_fraction() > 0.0

    def test_simulator_config_validation(self):
        with pytest.raises(ValueError):
            SimulatorConfig(decision_interval_ms=0.0)
        with pytest.raises(ValueError):
            SimulatorConfig(max_backlog=-1)
        with pytest.raises(ValueError):
            SimulatorConfig(busy_utilisation=0.0)

    def test_decisions_recorded_with_triggers(self, trained_dnn):
        scenario = single_dnn_scenario(duration_ms=2000.0)
        simulator = Simulator(scenario, RuntimeManager())
        trace = simulator.run()
        triggers = {decision.trigger for decision in trace.decisions}
        assert "app_arrival" in triggers
        assert "epoch" in triggers

    def test_departure_releases_cores(self, trained_dnn):
        app = make_dnn_application(
            "dnn1",
            trained_dnn,
            Requirements(target_fps=5.0),
            arrival_time_ms=0.0,
            departure_time_ms=1500.0,
        )
        scenario = Scenario(
            name="departure",
            platform_name="odroid_xu3",
            applications=[app],
            duration_ms=3000.0,
        )
        simulator = Simulator(scenario, RuntimeManager())
        trace = simulator.run()
        # After departure no cores stay reserved for the application.
        assert all(core.reserved_by != "dnn1" for core in simulator.soc.all_cores)
        # Jobs exist only before the departure time.
        assert all(job.release_ms < 1500.0 for job in trace.jobs_for("dnn1"))
