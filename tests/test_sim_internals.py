"""Tests for simulator internals: accounting, penalties, preemption, actions."""

import pytest

from repro.rtm.manager import RuntimeManager
from repro.rtm.state import MapApplication, SetConfiguration, SetFrequency
from repro.sim.engine import Simulator, SimulatorConfig
from repro.workloads.requirements import Requirements
from repro.workloads.scenarios import Scenario
from repro.workloads.tasks import (
    make_arvr_application,
    make_background_application,
    make_dnn_application,
)


def dnn_scenario(trained_dnn, extra_apps=(), duration_ms=3000.0, fps=5.0, **req):
    app = make_dnn_application(
        "dnn1", trained_dnn, Requirements(target_fps=fps, priority=3, **req)
    )
    return Scenario(
        name="unit",
        platform_name="odroid_xu3",
        applications=[app, *extra_apps],
        duration_ms=duration_ms,
    )


class _ScriptedManager:
    """A manager that issues a fixed action script on its first decision."""

    def __init__(self, actions):
        self._actions = list(actions)
        self.calls = 0

    def decide(self, state):
        self.calls += 1
        actions = self._actions if self.calls == 1 else []

        class _Decision:
            pass

        decision = _Decision()
        decision.actions = actions
        return decision


class TestScriptedActions:
    def test_map_and_configure_actions_are_applied(self, trained_dnn):
        scenario = dnn_scenario(trained_dnn, duration_ms=2000.0)
        manager = _ScriptedManager(
            [
                MapApplication(app_id="dnn1", cluster_name="a7", cores=2),
                SetConfiguration(app_id="dnn1", configuration=0.5),
                SetFrequency(cluster_name="a7", frequency_mhz=1000.0),
            ]
        )
        simulator = Simulator(scenario, manager)
        trace = simulator.run()
        jobs = trace.completed_jobs("dnn1")
        assert jobs
        assert all(job.cluster == "a7" for job in jobs)
        assert all(job.cores == 2 for job in jobs)
        assert all(job.configuration == pytest.approx(0.5) for job in jobs)
        assert all(job.frequency_mhz == pytest.approx(1000.0) for job in jobs)
        # The cores are genuinely reserved on the platform.
        assert len(simulator.soc.cluster("a7").cores_reserved_by("dnn1")) == 2

    def test_unknown_cluster_in_action_is_ignored(self, trained_dnn):
        scenario = dnn_scenario(trained_dnn, duration_ms=1000.0)
        manager = _ScriptedManager(
            [
                SetFrequency(cluster_name="npu", frequency_mhz=1000.0),
                MapApplication(app_id="dnn1", cluster_name="npu", cores=1),
            ]
        )
        trace = Simulator(scenario, manager).run()
        # The bogus actions are dropped; the DNN stays unmapped and its jobs drop.
        assert all(job.dropped for job in trace.jobs_for("dnn1"))

    def test_migration_penalty_charged_once(self, trained_dnn):
        scenario = dnn_scenario(trained_dnn, duration_ms=4000.0, fps=2.0)
        config = SimulatorConfig(migration_penalty_ms=50.0, decision_interval_ms=1000.0)

        class _MigratingManager:
            """Maps to the GPU first, then migrates to the A15 at the next call."""

            def __init__(self):
                self.calls = 0

            def decide(self, state):
                self.calls += 1

                class _Decision:
                    actions = []

                decision = _Decision()
                if self.calls == 1:
                    decision.actions = [MapApplication(app_id="dnn1", cluster_name="mali_gpu", cores=1)]
                elif self.calls == 2:
                    decision.actions = [MapApplication(app_id="dnn1", cluster_name="a15", cores=1)]
                else:
                    decision.actions = []
                return decision

        trace = Simulator(scenario, _MigratingManager(), config=config).run()
        a15_jobs = [job for job in trace.completed_jobs("dnn1") if job.cluster == "a15"]
        assert len(a15_jobs) >= 2
        # The first job after migration carries the 50 ms penalty.
        assert a15_jobs[0].latency_ms > a15_jobs[1].latency_ms + 40.0

    def test_configuration_switch_overhead_charged(self, trained_dnn):
        scenario = dnn_scenario(trained_dnn, duration_ms=3000.0, fps=2.0)

        class _SwitchingManager:
            def __init__(self):
                self.calls = 0

            def decide(self, state):
                self.calls += 1

                class _Decision:
                    actions = []

                decision = _Decision()
                if self.calls == 1:
                    decision.actions = [
                        MapApplication(app_id="dnn1", cluster_name="a15", cores=1),
                        SetConfiguration(app_id="dnn1", configuration=1.0),
                    ]
                elif self.calls == 2:
                    decision.actions = [SetConfiguration(app_id="dnn1", configuration=0.5)]
                else:
                    decision.actions = []
                return decision

        config = SimulatorConfig(decision_interval_ms=600.0)
        trace = Simulator(scenario, _SwitchingManager(), config=config).run()
        half_jobs = [j for j in trace.completed_jobs("dnn1") if j.configuration == pytest.approx(0.5)]
        assert len(half_jobs) >= 2
        # The switch overhead (1 ms by default) lands on the first 50 % job.
        assert half_jobs[0].latency_ms > half_jobs[1].latency_ms


class TestGenericApplications:
    def test_arvr_preempts_dnn_from_gpu(self, trained_dnn):
        arvr = make_arvr_application("arvr", arrival_time_ms=1000.0, priority=9)
        scenario = dnn_scenario(trained_dnn, extra_apps=[arvr], duration_ms=3000.0, fps=10.0)
        simulator = Simulator(scenario, RuntimeManager())
        simulator.run()
        gpu = simulator.soc.cluster("mali_gpu")
        # At the end of the run the AR/VR application owns the GPU core.
        assert gpu.cores_reserved_by("arvr")

    def test_arvr_raises_gpu_frequency_to_its_floor(self, trained_dnn):
        arvr = make_arvr_application("arvr", arrival_time_ms=500.0, gpu_min_frequency_mhz=600.0)
        scenario = dnn_scenario(trained_dnn, extra_apps=[arvr], duration_ms=1500.0)

        class _IdleManager:
            def decide(self, state):
                class _Decision:
                    actions = []

                return _Decision()

        simulator = Simulator(scenario, _IdleManager())
        simulator.soc.cluster("mali_gpu").set_frequency(177.0)
        simulator.run()
        assert simulator.soc.cluster("mali_gpu").frequency_mhz >= 600.0

    def test_background_task_occupies_cpu_cores(self, trained_dnn):
        background = make_background_application(
            "bg", cores=2, arrival_time_ms=0.0, departure_time_ms=2000.0
        )
        scenario = dnn_scenario(trained_dnn, extra_apps=[background], duration_ms=3000.0)
        simulator = Simulator(scenario, RuntimeManager())
        simulator.run()
        # After the background task departs its cores are free again.
        assert not any(
            core.reserved_by == "bg" for core in simulator.soc.all_cores
        )

    def test_memory_accounting_follows_arrivals_and_departures(self, trained_dnn):
        background = make_background_application(
            "bg", cores=1, arrival_time_ms=0.0, departure_time_ms=1000.0
        )
        scenario = dnn_scenario(trained_dnn, extra_apps=[background], duration_ms=2000.0)
        simulator = Simulator(scenario, RuntimeManager())
        simulator.run()
        # Only the DNN (which never departs) still holds memory at the end.
        dnn_footprint = scenario.application("dnn1").memory_footprint_mb
        assert simulator.soc.allocated_memory_mb == pytest.approx(dnn_footprint)


class TestPowerIntegration:
    def test_interval_power_reflects_load(self, trained_dnn):
        scenario = dnn_scenario(trained_dnn, duration_ms=3000.0, fps=20.0)
        simulator = Simulator(scenario, RuntimeManager())
        trace = simulator.run()
        idle_power = simulator.soc.idle_power_mw()
        # With a 20 fps DNN running, the mean sampled power must exceed the
        # idle floor (the busy-time integration must see the jobs even though
        # the sampling period is a multiple of the job period).
        assert trace.mean_power_mw() > idle_power * 1.02

    def test_utilisations_exposed_to_manager(self, trained_dnn):
        seen = {}

        class _SpyManager(RuntimeManager):
            def decide(self, state):
                if state.cluster_utilisations:
                    seen.update(state.cluster_utilisations)
                return super().decide(state)

        scenario = dnn_scenario(trained_dnn, duration_ms=3000.0, fps=20.0)
        Simulator(scenario, _SpyManager()).run()
        assert seen  # utilisation samples reached the manager
        assert all(0.0 <= value <= 1.0 for value in seen.values())
        assert max(seen.values()) > 0.0
