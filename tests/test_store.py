"""Tests for the persistent results warehouse (``repro.store``).

Covers the append-only store contract (first write wins, single-writer
thread, schema versioning with a migration hook), streaming writes from all
three execution backends, the kill-and-resume workflow (an interrupted sweep
resumed against the same store produces the same combined fingerprint digest
as a clean one-shot sweep), duplicate-label rejection parity across
backends, export formats and the bench-case resume path.
"""

from __future__ import annotations

import csv
import json
import os
import sqlite3

import pytest

import repro.store.results as store_module
from repro.analysis.bench import BENCH_KIND_DECISION, run_bench_specs
from repro.experiments import ExperimentSpec, grid_specs, run, run_many
from repro.experiments.backends import make_execution_backend
from repro.store import MIGRATIONS, STORE_SCHEMA_VERSION, ResultsStore, StoreError


SPECS = grid_specs(["steady"], ["rtm", "governor_only"], seeds=[0, 1])


@pytest.fixture(scope="module")
def executed():
    """The four grid specs executed once (serial reference results)."""
    return [run(spec) for spec in SPECS]


@pytest.fixture()
def store(tmp_path):
    with ResultsStore(tmp_path / "results.db") as opened:
        yield opened


class TestStoreBasics:
    def test_round_trip(self, store, executed):
        result = executed[0]
        spec_id = store.put_result(result, wall_time_s=0.25)
        assert spec_id == result.spec.spec_id()
        record = store.get(spec_id)
        assert record.label == result.spec.label
        assert record.fingerprint == result.trace.fingerprint()
        assert record.wall_time_s == 0.25
        assert record.metrics["violation_rate"] == result.trace.violation_rate()
        assert record.metrics["jobs"] == len(result.trace.jobs)
        # The stored TOML reconstitutes the exact spec (same content hash).
        assert record.spec() == result.spec
        assert record.spec().spec_id() == spec_id

    def test_mapping_protocol(self, store, executed):
        for result in executed:
            store.put_result(result)
        assert len(store) == len(executed)
        assert executed[0].spec.spec_id() in store
        assert "0" * 16 not in store
        assert store.ids() == {result.spec.spec_id() for result in executed}
        assert store.get("0" * 16) is None

    def test_results_in_insertion_order(self, store, executed, monkeypatch):
        clock = iter(range(1, 10))
        monkeypatch.setattr(store_module.time, "time", lambda: float(next(clock)))
        for result in executed:
            store.put_result(result)
        labels = [record.label for record in store.results()]
        assert labels == [result.spec.label for result in executed]

    def test_append_only_first_write_wins(self, store, executed):
        store.put_result(executed[0], wall_time_s=1.0)
        store.put_result(executed[0], wall_time_s=99.0)
        assert len(store) == 1
        assert store.get(executed[0].spec.spec_id()).wall_time_s == 1.0

    def test_close_is_idempotent_and_write_after_close_raises(self, tmp_path, executed):
        store = ResultsStore(tmp_path / "closing.db")
        store.put_result(executed[0])
        store.close()
        store.close()
        with pytest.raises(StoreError, match="closed"):
            store.put_result(executed[1])
        # The flushed write survived the close.
        with ResultsStore(tmp_path / "closing.db") as reopened:
            assert len(reopened) == 1

    def test_writer_errors_surface_on_the_next_call(self, store, executed):
        store._submit([("INSERT INTO no_such_table VALUES (1)", ())])
        with pytest.raises(StoreError, match="writer failed"):
            store.flush()
        # The error is raised once, then the store is usable again.
        store.put_result(executed[0])
        assert len(store) == 1


class TestErrorsTable:
    def test_put_error_round_trip(self, store):
        store.put_error("a" * 16, "steady/rtm/seed0", "RuntimeError: boom\ntrace...")
        store.flush()
        (error,) = store.errors()
        assert error.spec_id == "a" * 16
        assert error.label == "steady/rtm/seed0"
        assert error.summary == "RuntimeError: boom"
        assert store.get_error("a" * 16).message == "RuntimeError: boom\ntrace..."
        assert store.get_error("b" * 16) is None

    def test_errors_never_count_as_results(self, store):
        store.put_error("a" * 16, "case", "failed")
        store.flush()
        assert len(store) == 0
        assert "a" * 16 not in store.ids()

    def test_error_is_replaced_on_rewrite_and_resolved_by_success(
        self, store, executed
    ):
        spec_id = executed[0].spec.spec_id()
        store.put_error(spec_id, executed[0].spec.label, "first failure")
        store.put_error(spec_id, executed[0].spec.label, "second failure")
        store.flush()
        assert store.get_error(spec_id).message == "second failure"
        # A successful run of the same spec deletes the error row.
        store.put_result(executed[0])
        store.flush()
        assert store.get_error(spec_id) is None
        assert not store.errors()

    def test_erroring_spec_recomputes_on_resume(self, tmp_path):
        """End to end: a failed spec lands in ``errors``, not ``results``,
        so ``resume=True`` re-runs it once the cause is fixed."""
        from repro.workloads import ArrivalTrace, build_scenario

        trace_path = tmp_path / "late.jsonl"
        spec = ExperimentSpec(
            scenario="trace",
            manager="rtm",
            scenario_params={"path": str(trace_path)},
        )
        store_path = tmp_path / "errors.db"
        batch = run_many([spec], validate=False, store=store_path)
        assert spec.label in batch.errors
        with ResultsStore(store_path) as store:
            assert store.ids() == set()
            (error,) = store.errors()
            assert error.spec_id == spec.spec_id()
            assert "TraceFormatError" in error.summary

        ArrivalTrace.from_scenario(build_scenario("steady")).save(trace_path)
        resumed = run_many([spec], validate=False, store=store_path, resume=True)
        assert not resumed.errors
        assert resumed.computed_count == 1
        with ResultsStore(store_path) as store:
            assert store.ids() == {spec.spec_id()}
            assert not store.errors()


class TestSchemaVersioning:
    def test_fresh_store_is_stamped_with_the_current_version(self, tmp_path):
        path = tmp_path / "fresh.db"
        ResultsStore(path).close()
        (version,) = sqlite3.connect(path).execute("PRAGMA user_version").fetchone()
        assert version == STORE_SCHEMA_VERSION

    def test_newer_schema_version_is_rejected(self, tmp_path):
        path = tmp_path / "future.db"
        ResultsStore(path).close()
        connection = sqlite3.connect(path)
        connection.execute(f"PRAGMA user_version = {STORE_SCHEMA_VERSION + 1}")
        connection.commit()
        connection.close()
        with pytest.raises(StoreError, match="supports up to"):
            ResultsStore(path)

    def test_migration_hook_upgrades_older_stores(self, tmp_path, monkeypatch, executed):
        path = tmp_path / "old.db"
        with ResultsStore(path) as old:
            old.put_result(executed[0])
        # Pretend the codebase moved to schema version N+1 with a migration
        # that adds a column; reopening the old store must apply it.
        applied = []

        def migrate(connection):
            connection.execute("ALTER TABLE results ADD COLUMN note TEXT")
            applied.append(True)

        monkeypatch.setattr(store_module, "STORE_SCHEMA_VERSION", STORE_SCHEMA_VERSION + 1)
        monkeypatch.setitem(MIGRATIONS, STORE_SCHEMA_VERSION, migrate)
        with ResultsStore(path) as upgraded:
            assert applied == [True]
            assert len(upgraded) == 1
        (version,) = sqlite3.connect(path).execute("PRAGMA user_version").fetchone()
        assert version == STORE_SCHEMA_VERSION + 1

    def test_missing_migration_is_an_error(self, tmp_path, monkeypatch):
        path = tmp_path / "stuck.db"
        ResultsStore(path).close()
        monkeypatch.setattr(store_module, "STORE_SCHEMA_VERSION", STORE_SCHEMA_VERSION + 1)
        with pytest.raises(StoreError, match="no migration registered"):
            ResultsStore(path)


class TestFingerprintDigest:
    def test_digest_is_order_independent(self, tmp_path, executed):
        with ResultsStore(tmp_path / "fwd.db") as forward:
            for result in executed:
                forward.put_result(result)
            digest_forward = forward.fingerprint_digest()
        with ResultsStore(tmp_path / "rev.db") as backward:
            for result in reversed(executed):
                backward.put_result(result)
            digest_backward = backward.fingerprint_digest()
        assert digest_forward == digest_backward

    def test_digest_restricted_to_spec_ids(self, store, executed):
        for result in executed:
            store.put_result(result)
        subset = [executed[0].spec.spec_id(), executed[1].spec.spec_id()]
        assert store.fingerprint_digest(subset) != store.fingerprint_digest()
        # Absent ids are skipped, not an error.
        assert store.fingerprint_digest(subset + ["f" * 16]) == store.fingerprint_digest(subset)


class TestExport:
    def test_jsonl_export(self, store, executed, tmp_path):
        for result in executed:
            store.put_result(result)
        out = tmp_path / "rows.jsonl"
        assert store.export(out, format="jsonl") == len(executed)
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert {row["spec_id"] for row in rows} == store.ids()
        assert all("fingerprint" in row and "violation_rate" in row for row in rows)

    def test_csv_export(self, store, executed, tmp_path):
        for result in executed:
            store.put_result(result)
        out = tmp_path / "rows.csv"
        assert store.export(out, format="csv") == len(executed)
        with out.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(executed)
        assert {row["label"] for row in rows} == {result.spec.label for result in executed}

    def test_toml_export_is_replayable(self, store, executed, tmp_path):
        from repro.experiments import load_specs

        for result in executed:
            store.put_result(result)
        out = tmp_path / "replay.toml"
        assert store.export(out, format="toml") == len(executed)
        assert sorted(spec.spec_id() for spec in load_specs(out)) == sorted(store.ids())

    def test_unknown_format_rejected(self, store):
        with pytest.raises(ValueError, match="unknown export format"):
            store.export("out.xml", format="xml")

    def test_export_is_atomic(self, store, executed, tmp_path, monkeypatch):
        store.put_result(executed[0])
        out = tmp_path / "rows.jsonl"
        store.export(out, format="jsonl")
        original = out.read_text()
        store.put_result(executed[1])
        monkeypatch.setattr(os, "replace", lambda src, dst: (_ for _ in ()).throw(OSError("boom")))
        with pytest.raises(OSError):
            store.export(out, format="jsonl")
        assert out.read_text() == original


class TestGc:
    def test_keeps_the_newest_results(self, store, executed, monkeypatch):
        clock = iter(range(1, 10))
        monkeypatch.setattr(store_module.time, "time", lambda: float(next(clock)))
        for result in executed:
            store.put_result(result)
        assert store.gc(keep_latest=2) == 2
        survivors = {record.label for record in store.results()}
        assert survivors == {result.spec.label for result in executed[-2:]}

    def test_prunes_bench_documents_per_kind(self, store):
        for index in range(4):
            store.put_bench_run("decision_kernel", {"run": index})
        store.put_bench_run("batched_engine", {"run": 0})
        store.gc(keep_latest=2)
        assert store.bench_run_counts() == {"batched_engine": 1, "decision_kernel": 2}

    def test_negative_keep_latest_rejected(self, store):
        with pytest.raises(ValueError, match="non-negative"):
            store.gc(keep_latest=-1)


class TestBackendStreaming:
    """Every backend streams completed results into the store as they finish."""

    @pytest.mark.parametrize("backend", ["serial", "process", "batched"])
    def test_backend_streams_results_to_the_store(self, backend, tmp_path, executed):
        with ResultsStore(tmp_path / f"{backend}.db") as store:
            batch = make_execution_backend(backend).execute(SPECS, workers=1, store=store)
            assert not batch.errors
            assert store.ids() == {spec.spec_id() for spec in SPECS}
            for result in executed:
                assert store.get(result.spec.spec_id()).fingerprint == result.trace.fingerprint()

    def test_process_pool_streams_results_to_the_store(self, tmp_path, executed):
        with ResultsStore(tmp_path / "pool.db") as store:
            batch = make_execution_backend("process").execute(SPECS, workers=2, store=store)
            assert not batch.errors
            for result in executed:
                assert store.get(result.spec.spec_id()).fingerprint == result.trace.fingerprint()

    def test_batched_backend_stores_null_wall_time(self, tmp_path):
        # Wall time is not separable per spec inside the lock-step engine.
        with ResultsStore(tmp_path / "batched.db") as store:
            make_execution_backend("batched").execute(SPECS, workers=1, store=store)
            assert store.get(SPECS[0].spec_id()).wall_time_s is None

    def test_failing_specs_are_not_stored(self, tmp_path):
        bad = ExperimentSpec(scenario="steady", manager="governor_only", policy="min_latency")
        with ResultsStore(tmp_path / "partial.db") as store:
            batch = run_many([SPECS[0], bad], validate=False, store=store)
            assert bad.label in batch.errors
            assert store.ids() == {SPECS[0].spec_id()}


class TestDuplicateLabelParity:
    """All three backends reject duplicate labels identically (bugfix).

    ``ProcessBackend`` used to key futures by label, silently dropping one of
    two same-label submissions and misattributing its result; execution is
    now tracked by submission index and every backend rejects duplicates up
    front with the same error.
    """

    @pytest.mark.parametrize("backend", ["serial", "process", "batched"])
    def test_backends_reject_duplicate_labels(self, backend):
        twice = [ExperimentSpec(scenario="steady"), ExperimentSpec(scenario="steady")]
        with pytest.raises(ValueError, match="duplicate experiment labels.*'name' keys"):
            make_execution_backend(backend).execute(twice, workers=1)

    def test_process_pool_rejects_before_spawning_workers(self):
        twice = [ExperimentSpec(scenario="steady"), ExperimentSpec(scenario="steady")]
        with pytest.raises(ValueError, match="duplicate experiment labels"):
            make_execution_backend("process").execute(twice, workers=4)

    def test_distinct_names_disambiguate_identical_specs(self, tmp_path):
        specs = [
            ExperimentSpec(scenario="steady", name="first"),
            ExperimentSpec(scenario="steady", name="second"),
        ]
        batch = run_many(specs, validate=False)
        assert set(batch.results) == {"first", "second"}
        # The name is part of the content hash, so each gets its own row.
        with ResultsStore(tmp_path / "dedup.db") as store:
            run_many(specs, validate=False, store=store)
            assert len(store) == 2
            assert {record.label for record in store.results()} == {"first", "second"}


class TestResume:
    def test_resume_requires_a_store(self):
        with pytest.raises(ValueError, match="requires a results store"):
            run_many(SPECS, validate=False, resume=True)

    def test_resume_skips_stored_specs(self, tmp_path):
        path = tmp_path / "resume.db"
        run_many(SPECS[:2], validate=False, store=path)
        batch = run_many(SPECS, validate=False, store=path, resume=True)
        assert batch.skipped_count == 2 and batch.computed_count == 2
        assert set(batch.skipped) == {spec.label for spec in SPECS[:2]}
        assert set(batch.results) == {spec.label for spec in SPECS[2:]}
        # Skipped records carry the stored metrics.
        first = batch.skipped[SPECS[0].label]
        assert first.spec_id == SPECS[0].spec_id()

    def test_store_accepts_path_or_instance(self, tmp_path):
        path = tmp_path / "either.db"
        run_many(SPECS[:1], validate=False, store=str(path))
        with ResultsStore(path) as store:
            assert len(store) == 1
            batch = run_many(SPECS[:1], validate=False, store=store, resume=True)
            assert batch.skipped_count == 1 and batch.computed_count == 0

    def test_killed_sweep_resumes_to_the_clean_digest(self, tmp_path, monkeypatch):
        """The acceptance gate: kill a sweep mid-run, resume, compare digests.

        A sweep interrupted after two specs (simulated with a
        ``KeyboardInterrupt``, which escapes the per-spec ``except
        Exception`` isolation exactly like a real Ctrl-C) must, after a
        resumed re-invocation, hold results whose combined fingerprint
        digest is identical to a clean one-shot sweep's.
        """
        import repro.experiments.runner as runner_module

        real_run_one = runner_module._run_one
        killed_path = tmp_path / "killed.db"
        calls = []

        def run_one_then_die(spec):
            if len(calls) == 2:
                raise KeyboardInterrupt
            calls.append(spec.label)
            return real_run_one(spec)

        monkeypatch.setattr(runner_module, "_run_one", run_one_then_die)
        with pytest.raises(KeyboardInterrupt):
            run_many(SPECS, validate=False, store=killed_path)
        monkeypatch.setattr(runner_module, "_run_one", real_run_one)

        with ResultsStore(killed_path) as partial:
            assert len(partial) == 2  # everything completed before the kill

        resumed = run_many(SPECS, validate=False, store=killed_path, resume=True)
        assert resumed.skipped_count == 2 and resumed.computed_count == 2

        clean_path = tmp_path / "clean.db"
        clean = run_many(SPECS, validate=False, store=clean_path)
        assert not clean.errors
        with ResultsStore(killed_path) as a, ResultsStore(clean_path) as b:
            assert a.fingerprint_digest() == b.fingerprint_digest()


class TestBenchStore:
    def test_bench_cases_are_first_write_wins(self, store):
        store.put_bench_case("a" * 16, BENCH_KIND_DECISION, {"e2e_s": 1.0})
        store.put_bench_case("a" * 16, BENCH_KIND_DECISION, {"e2e_s": 9.0})
        assert store.get_bench_case("a" * 16, BENCH_KIND_DECISION) == {"e2e_s": 1.0}
        assert store.get_bench_case("a" * 16, "other") is None

    def test_run_bench_specs_resume_reuses_stored_timings(self, tmp_path, monkeypatch):
        import repro.analysis.bench as bench_module

        spec = ExperimentSpec(scenario="steady", manager="rtm")
        with ResultsStore(tmp_path / "bench.db") as store:
            first = run_bench_specs([spec], repeats=1, store=store)
            # A resumed invocation must load the stored timings, never re-time.
            monkeypatch.setattr(
                bench_module,
                "run_bench_spec",
                lambda *args, **kwargs: pytest.fail("resume must not re-run the bench"),
            )
            second = run_bench_specs([spec], repeats=1, store=store, resume=True)
        assert second[0].key == first[0].key
        assert second[0].e2e_s == first[0].e2e_s
        assert second[0].decisions == first[0].decisions

    def test_bench_resume_requires_a_store(self):
        with pytest.raises(ValueError, match="requires a results store"):
            run_bench_specs([], resume=True)
