"""Streaming trace pipeline: readers, writer, diurnal traffic, memory bounds.

Covers the streaming surface of :mod:`repro.workloads.traces` — the
generator-based readers (`iter_records`/`stream_load`/`stream_scenario`),
the incremental :class:`TraceWriter`, suffix-detected gzip compression and
the one-pass :func:`compute_trace_stats` — plus the malformed-trace
validation corpus (missing keys, bad types, duplicate ids, truncated gzip,
missing header version), the diurnal traffic generator, and tracemalloc
peak-memory assertions that recording and summarising stay bounded however
long the trace is.
"""

from __future__ import annotations

import gzip
import json
import tracemalloc

import pytest

from repro.ioutils import atomic_binary_writer, atomic_write_text, fsync_directory
from repro.workloads import build_scenario
from repro.workloads.diurnal import (
    DiurnalConfig,
    DiurnalTraffic,
    config_for_arrivals,
    write_diurnal_trace,
)
from repro.workloads.traces import (
    ArrivalTrace,
    TraceFormatError,
    TraceWriter,
    compute_trace_stats,
)

HEADER = {
    "format": "repro-arrival-trace",
    "version": 1,
    "scenario": "unit",
    "platform": "odroid_xu3",
    "duration_ms": 10000.0,
}


def _bg_record(app_id: str = "bg1", **overrides: object) -> dict:
    record = {
        "app_id": app_id,
        "kind": "background",
        "arrival_ms": 100.0,
        "departure_ms": 900.0,
        "memory_footprint_mb": 30.0,
        "requirements": {"priority": 0},
        "demand": {"core_type": "cpu_little", "cores": 1, "utilisation": 0.5},
    }
    record.update(overrides)
    return record


def _write_jsonl(path, lines) -> None:
    path.write_text("\n".join(json.dumps(line, sort_keys=True) for line in lines) + "\n")


# ------------------------------------------------------------- round trips


class TestStreamingRoundTrips:
    def test_stream_load_equals_load(self, tmp_path):
        trace = ArrivalTrace.from_scenario(build_scenario("rush_hour", seed=0))
        path = tmp_path / "t.jsonl"
        trace.save(path)
        loaded = ArrivalTrace.load(path)
        stream = ArrivalTrace.stream_load(path)
        assert stream.header.scenario_name == loaded.scenario_name
        assert stream.header.duration_ms == loaded.duration_ms
        records = list(stream)
        assert [r for k, r in records if k == "application"] == loaded.applications
        assert [r for k, r in records if k == "event"] == loaded.events

    @pytest.mark.parametrize(
        "scenario", ["rush_hour", "fig2", "diurnal", "steady_then_overload"]
    )
    def test_stream_scenario_timeline_identical_to_in_memory(self, tmp_path, scenario):
        source = build_scenario(scenario, seed=0)
        path = tmp_path / "t.jsonl"
        ArrivalTrace.from_scenario(source).save(path)
        in_memory = ArrivalTrace.load(path).to_scenario()
        streamed = ArrivalTrace.stream_scenario(path)
        assert len(streamed.applications) == len(in_memory.applications)
        for a, b in zip(streamed.applications, in_memory.applications):
            assert a.app_id == b.app_id
            assert a.kind == b.kind
            assert a.arrival_time_ms == b.arrival_time_ms
            assert a.departure_time_ms == b.departure_time_ms
            assert a.requirements == b.requirements
        assert streamed.extra_events == in_memory.extra_events
        assert streamed.name == in_memory.name

    def test_streamed_replay_simulates_identically(self, tmp_path):
        from repro.experiments import build_manager_from_spec, ExperimentSpec
        from repro.sim.engine import simulate_scenario

        path = tmp_path / "t.jsonl"
        ArrivalTrace.from_scenario(build_scenario("rush_hour", seed=0)).save(path)
        fingerprints = []
        for scenario in (
            ArrivalTrace.load(path).to_scenario(),
            ArrivalTrace.stream_scenario(path),
        ):
            spec = ExperimentSpec(name="x", scenario="trace", manager="governor_only")
            trace = simulate_scenario(scenario, build_manager_from_spec(spec))
            fingerprints.append(trace.fingerprint())
        assert fingerprints[0] == fingerprints[1]

    def test_gzip_round_trip_and_deterministic_bytes(self, tmp_path):
        trace = ArrivalTrace.from_scenario(build_scenario("rush_hour", seed=1))
        plain, gz1, gz2 = tmp_path / "t.jsonl", tmp_path / "a.jsonl.gz", tmp_path / "b.jsonl.gz"
        trace.save(plain)
        trace.save(gz1)
        trace.save(gz2)
        assert gz1.read_bytes() == gz2.read_bytes()  # mtime=0 members
        assert gzip.decompress(gz1.read_bytes()) == plain.read_bytes()
        assert ArrivalTrace.load(gz1).applications == trace.applications

    def test_writer_output_matches_in_memory_save_bytes(self, tmp_path):
        trace = ArrivalTrace.from_scenario(build_scenario("fig2"))
        via_save, via_writer = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        trace.save(via_save)
        with TraceWriter(
            via_writer,
            scenario_name=trace.scenario_name,
            platform_name=trace.platform_name,
            duration_ms=trace.duration_ms,
        ) as writer:
            for record in trace.applications:
                writer.write_application(record)
            for record in trace.events:
                writer.write_event(record)
        assert via_writer.read_bytes() == via_save.read_bytes()
        assert writer.applications_written == len(trace.applications)
        assert writer.events_written == len(trace.events)

    def test_writer_aborts_atomically(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("previous content")
        with pytest.raises(RuntimeError):
            with TraceWriter(
                path, scenario_name="x", platform_name="odroid_xu3", duration_ms=1.0
            ) as writer:
                writer.write_application(_bg_record())
                raise RuntimeError("mid-write crash")
        assert path.read_text() == "previous content"
        assert not list(tmp_path.glob("*.tmp"))

    def test_writer_validates_on_append(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with pytest.raises(TraceFormatError, match="arrival_ms"):
            with TraceWriter(
                path, scenario_name="x", platform_name="odroid_xu3", duration_ms=1.0
            ) as writer:
                record = _bg_record()
                del record["arrival_ms"]
                writer.write_application(record)
        assert not path.exists()


# -------------------------------------------------------- malformed corpus


class TestMalformedTraces:
    def test_application_missing_arrival_ms(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record = _bg_record()
        del record["arrival_ms"]
        _write_jsonl(path, [HEADER, {"record": "application", **record}])
        with pytest.raises(TraceFormatError, match="missing required key 'arrival_ms'"):
            ArrivalTrace.load(path)
        with pytest.raises(TraceFormatError, match="'bg1'"):
            compute_trace_stats(path)

    def test_application_non_numeric_arrival(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_jsonl(
            path,
            [HEADER, {"record": "application", **_bg_record(arrival_ms="soon")}],
        )
        with pytest.raises(TraceFormatError, match="non-numeric arrival_ms"):
            ArrivalTrace.load(path)

    def test_application_non_finite_arrival(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps(HEADER)
            + "\n"
            + json.dumps({"record": "application", **_bg_record(arrival_ms=float("nan"))})
            + "\n"
        )
        with pytest.raises(TraceFormatError, match="non-finite arrival_ms"):
            ArrivalTrace.load(path)

    def test_application_boolean_arrival_is_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_jsonl(
            path, [HEADER, {"record": "application", **_bg_record(arrival_ms=True)}]
        )
        with pytest.raises(TraceFormatError, match="non-numeric arrival_ms"):
            ArrivalTrace.load(path)

    def test_application_without_app_id(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record = _bg_record()
        del record["app_id"]
        _write_jsonl(path, [HEADER, {"record": "application", **record}])
        with pytest.raises(TraceFormatError, match="app_id"):
            ArrivalTrace.load(path)

    def test_event_missing_time_ms(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_jsonl(
            path,
            [HEADER, {"record": "event", "kind": "requirement_change", "app_id": "a"}],
        )
        with pytest.raises(TraceFormatError, match="missing required key 'time_ms'"):
            ArrivalTrace.load(path)

    def test_duplicate_app_ids_rejected_by_load(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_jsonl(
            path,
            [
                HEADER,
                {"record": "application", **_bg_record("dup", arrival_ms=1.0)},
                {"record": "application", **_bg_record("dup", arrival_ms=2.0)},
            ],
        )
        with pytest.raises(TraceFormatError, match="duplicate app_id 'dup'"):
            ArrivalTrace.load(path)
        with pytest.raises(TraceFormatError, match="duplicate app_id 'dup'"):
            ArrivalTrace.stream_scenario(path)

    def test_duplicate_app_ids_rejected_by_to_scenario(self):
        trace = ArrivalTrace(
            scenario_name="x",
            platform_name="odroid_xu3",
            duration_ms=100.0,
            applications=[_bg_record("dup"), _bg_record("dup", arrival_ms=5.0)],
        )
        with pytest.raises(TraceFormatError, match="duplicate app_id 'dup'"):
            trace.to_scenario()

    def test_header_missing_version_is_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        headerless = {k: v for k, v in HEADER.items() if k != "version"}
        _write_jsonl(path, [headerless])
        with pytest.raises(TraceFormatError, match="missing required key 'version'"):
            ArrivalTrace.read_header(path)
        with pytest.raises(TraceFormatError, match="missing required key 'version'"):
            ArrivalTrace.load(path)

    def test_truncated_gzip_is_a_format_error(self, tmp_path):
        trace = ArrivalTrace.from_scenario(build_scenario("rush_hour", seed=0))
        path = tmp_path / "t.jsonl.gz"
        trace.save(path)
        clipped = tmp_path / "clipped.jsonl.gz"
        clipped.write_bytes(path.read_bytes()[:-20])
        with pytest.raises(TraceFormatError, match="truncated compressed trace"):
            ArrivalTrace.load(clipped)
        with pytest.raises(TraceFormatError, match="truncated compressed trace"):
            compute_trace_stats(clipped)

    def test_garbage_gzip_is_a_format_error(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        path.write_bytes(b"not gzip at all")
        with pytest.raises(TraceFormatError, match="cannot read trace file"):
            ArrivalTrace.load(path)

    def test_zstd_without_package_fails_clearly(self, tmp_path):
        try:
            import zstandard  # noqa: F401
        except ImportError:
            pass
        else:
            pytest.skip("zstandard is installed; the gate does not apply")
        path = tmp_path / "t.jsonl.zst"
        path.write_bytes(b"")
        with pytest.raises(TraceFormatError, match="zstandard"):
            ArrivalTrace.read_header(path)
        with pytest.raises(TraceFormatError, match="zstandard"):
            with TraceWriter(
                path, scenario_name="x", platform_name="odroid_xu3", duration_ms=1.0
            ):
                pass


# ------------------------------------------------------------- trace stats


class TestComputeTraceStats:
    def test_matches_manual_summary(self, tmp_path):
        path = tmp_path / "t.jsonl"
        arrivals = [10.0, 30.0, 70.0, 150.0]
        _write_jsonl(
            path,
            [HEADER]
            + [
                {"record": "application", **_bg_record(f"a{i}", arrival_ms=t)}
                for i, t in enumerate(arrivals)
            ],
        )
        stats = compute_trace_stats(path)
        assert stats.num_applications == 4
        assert stats.by_kind == {"background": 4}
        assert stats.num_departures == 4
        assert stats.first_arrival_ms == 10.0
        assert stats.last_arrival_ms == 150.0
        assert stats.gap_min_ms == 20.0
        assert stats.gap_max_ms == 80.0
        assert stats.gap_p50_ms == pytest.approx(40.0)  # gaps 20, 40, 80

    def test_header_only_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_jsonl(path, [HEADER])
        stats = compute_trace_stats(path)
        assert stats.num_applications == 0
        assert stats.first_arrival_ms is None
        assert stats.gap_p50_ms is None


# -------------------------------------------------------------- durability


class TestAtomicWriter:
    def test_fsync_directory_missing_path_is_a_noop(self, tmp_path):
        fsync_directory(tmp_path / "does-not-exist")

    def test_atomic_write_text_replaces_and_cleans_up(self, tmp_path):
        path = tmp_path / "f.txt"
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        assert path.read_text() == "two"
        assert list(tmp_path.iterdir()) == [path]

    def test_binary_writer_failure_keeps_old_content(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"old")
        with pytest.raises(RuntimeError):
            with atomic_binary_writer(path) as stream:
                stream.write(b"partial")
                raise RuntimeError("crash")
        assert path.read_bytes() == b"old"
        assert list(tmp_path.iterdir()) == [path]


# --------------------------------------------------------- diurnal traffic


class TestDiurnalTraffic:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="base_rate_per_s"):
            DiurnalConfig(base_rate_per_s=0.0)
        with pytest.raises(ValueError, match="diurnal_amplitude"):
            DiurnalConfig(diurnal_amplitude=1.5)
        with pytest.raises(ValueError, match="flash_magnitude"):
            DiurnalConfig(flash_magnitude=0.5)
        with pytest.raises(ValueError, match="num_archetypes"):
            DiurnalConfig(num_archetypes=0)

    def test_deterministic_and_restartable(self):
        config = DiurnalConfig(duration_ms=60000.0, base_rate_per_s=1.0)
        traffic = DiurnalTraffic(config, seed=5)
        first = list(traffic.iter_records())
        assert first == list(traffic.iter_records())
        assert first == list(DiurnalTraffic(config, seed=5).iter_records())
        assert first != list(DiurnalTraffic(config, seed=6).iter_records())

    def test_arrivals_chronological_and_unique_ids(self):
        config = DiurnalConfig(duration_ms=120000.0, base_rate_per_s=2.0)
        records = [r for _, r in DiurnalTraffic(config, seed=1).iter_records()]
        arrivals = [r["arrival_ms"] for r in records]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] < config.duration_ms
        ids = [r["app_id"] for r in records]
        assert len(ids) == len(set(ids))
        for record in records:
            assert record["departure_ms"] > record["arrival_ms"]

    def test_flash_crowd_raises_local_density(self):
        config = DiurnalConfig(
            duration_ms=600000.0,
            base_rate_per_s=0.5,
            diurnal_amplitude=0.0,
            flash_crowds=1,
            flash_magnitude=4.0,
            flash_duration_fraction=0.1,
        )
        traffic = DiurnalTraffic(config, seed=2)
        (start, end), = traffic.flash_windows
        arrivals = [r["arrival_ms"] for _, r in traffic.iter_records()]
        inside = sum(1 for t in arrivals if start <= t < end)
        outside = len(arrivals) - inside
        inside_rate = inside / (end - start)
        outside_rate = outside / (config.duration_ms - (end - start))
        assert inside_rate > 2.0 * outside_rate

    def test_popularity_is_rank_ordered(self):
        config = DiurnalConfig(
            duration_ms=600000.0,
            base_rate_per_s=1.0,
            num_archetypes=4,
            popularity_exponent=1.0,
            dnn_fraction=0.5,
        )
        counts = [0, 0, 0, 0]
        for _, record in DiurnalTraffic(config, seed=3).iter_records():
            archetype = int(record["app_id"].split("_a")[1].split("_")[0])
            counts[archetype] += 1
        assert counts[0] > counts[3]

    def test_config_for_arrivals_hits_target(self, tmp_path):
        config = config_for_arrivals(3000, duration_ms=600000.0)
        written = write_diurnal_trace(tmp_path / "t.jsonl", config, seed=4)
        assert written >= 3000

    def test_registry_scenario_matches_trace_replay(self, tmp_path):
        path = tmp_path / "d.jsonl"
        write_diurnal_trace(path, seed=2)
        direct = build_scenario("diurnal", seed=2)
        replayed = ArrivalTrace.stream_scenario(path)
        assert [a.app_id for a in replayed.applications] == [
            a.app_id for a in direct.applications
        ]
        assert [a.arrival_time_ms for a in replayed.applications] == [
            a.arrival_time_ms for a in direct.applications
        ]

    def test_dnn_records_share_models_per_archetype(self):
        scenario = build_scenario("diurnal", seed=3)
        by_archetype: dict = {}
        for app in scenario.applications:
            if app.kind.value != "dnn_inference":
                continue
            archetype = app.app_id.split("_a")[1].split("_")[0]
            by_archetype.setdefault(archetype, set()).add(id(app.trained))
        for archetype, trained_ids in by_archetype.items():
            assert len(trained_ids) == 1, f"archetype {archetype} split its model"


# ------------------------------------------------------------ memory bounds


class TestStreamingMemoryBounds:
    """Peak memory of the streaming paths is bounded and small.

    The trace here holds ~60k arrivals (~8 MB on disk); materialised as
    record dicts it would cost hundreds of MB.  Recording must stay O(chunk)
    and :func:`compute_trace_stats` O(8 bytes/arrival) — the CI trace job
    repeats the same assertion at the million-arrival scale via
    ``trace stats --max-peak-mb``.
    """

    @pytest.fixture(scope="class")
    def big_trace(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("diurnal") / "big.jsonl.gz"
        config = config_for_arrivals(60_000, duration_ms=1_800_000.0)
        tracemalloc.start()
        written = write_diurnal_trace(path, config, seed=9)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return path, written, peak

    def test_recording_memory_is_chunk_bounded(self, big_trace):
        _, written, peak = big_trace
        assert written >= 60_000
        assert peak < 16e6, f"recording peaked at {peak / 1e6:.1f} MB"

    def test_stats_memory_is_arrival_array_bounded(self, big_trace):
        path, written, _ = big_trace
        tracemalloc.start()
        stats = compute_trace_stats(path)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert stats.num_applications == written
        # array('d') + the numpy sort/diff copies: ~25 bytes per arrival,
        # versus >1 KB per arrival for materialised record dicts.
        assert peak < 64 * written, f"stats peaked at {peak / 1e6:.1f} MB"

    def test_iter_records_is_constant_memory(self, big_trace):
        path, written, _ = big_trace
        tracemalloc.start()
        count = sum(1 for _ in ArrivalTrace.iter_records(path))
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert count == written
        assert peak < 8e6, f"pure streaming peaked at {peak / 1e6:.1f} MB"
