"""Tests for requirements, tasks, scenarios and the workload generator."""

import pytest

from repro.platforms.core import CoreType
from repro.workloads.generator import WorkloadGenerator, WorkloadGeneratorConfig
from repro.workloads.requirements import MetricSample, Requirements, Violation
from repro.workloads.scenarios import (
    SCENARIO_BUILDERS,
    ScenarioEventKind,
    fig2_scenario,
    multi_dnn_scenario,
    single_dnn_scenario,
    thermal_stress_scenario,
)
from repro.workloads.tasks import (
    DNNApplication,
    ResourceDemand,
    TaskKind,
    make_arvr_application,
    make_background_application,
    make_dnn_application,
)


class TestRequirements:
    def test_latency_limit_from_fps(self):
        requirements = Requirements(target_fps=25.0)
        assert requirements.effective_latency_limit_ms == pytest.approx(40.0)
        assert requirements.period_ms == pytest.approx(40.0)

    def test_explicit_latency_tighter_than_fps_wins(self):
        requirements = Requirements(target_fps=10.0, max_latency_ms=50.0)
        assert requirements.effective_latency_limit_ms == pytest.approx(50.0)

    def test_check_reports_each_violated_axis(self):
        requirements = Requirements(
            max_latency_ms=100.0, max_energy_mj=50.0, min_accuracy_percent=60.0
        )
        sample = MetricSample(latency_ms=150.0, energy_mj=40.0, accuracy_percent=55.0)
        violations = requirements.check(sample)
        metrics = {violation.metric for violation in violations}
        assert metrics == {"latency_ms", "accuracy_percent"}

    def test_satisfied_sample(self):
        requirements = Requirements(max_latency_ms=100.0, min_accuracy_percent=60.0)
        sample = MetricSample(latency_ms=80.0, accuracy_percent=70.0)
        assert requirements.is_satisfied_by(sample)

    def test_missing_metrics_are_not_checked(self):
        requirements = Requirements(max_energy_mj=10.0)
        assert requirements.is_satisfied_by(MetricSample(latency_ms=5000.0))

    def test_violation_magnitude(self):
        violation = Violation("latency_ms", limit=100.0, actual=150.0)
        assert violation.magnitude == pytest.approx(0.5)
        assert "latency_ms" in str(violation)

    def test_with_changes_creates_modified_copy(self):
        original = Requirements(target_fps=30.0, min_accuracy_percent=68.0)
        relaxed = original.with_changes(min_accuracy_percent=56.0)
        assert relaxed.min_accuracy_percent == 56.0
        assert relaxed.target_fps == 30.0
        assert original.min_accuracy_percent == 68.0

    def test_unconstrained_detection(self):
        assert Requirements().is_unconstrained
        assert not Requirements(target_fps=1.0).is_unconstrained

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            Requirements(max_latency_ms=0.0)
        with pytest.raises(ValueError):
            Requirements(min_accuracy_percent=120.0)
        with pytest.raises(ValueError):
            Requirements(target_fps=-5.0)


class TestTasks:
    def test_dnn_application_properties(self, trained_dnn):
        app = make_dnn_application(
            "dnn1", trained_dnn, Requirements(target_fps=10.0, priority=4)
        )
        assert app.kind == TaskKind.DNN_INFERENCE
        assert app.priority == 4
        assert app.configurations == [0.25, 0.5, 0.75, 1.0]
        assert app.accuracy_of(1.0) == pytest.approx(71.2)
        assert app.period_ms() == pytest.approx(100.0)
        assert app.memory_footprint_mb == pytest.approx(
            trained_dnn.dynamic_dnn.memory_footprint_mb()
        )

    def test_dnn_application_requires_trained_model(self):
        with pytest.raises(ValueError, match="trained"):
            DNNApplication(
                app_id="x", kind=TaskKind.DNN_INFERENCE, requirements=Requirements()
            )

    def test_activity_window(self, trained_dnn):
        app = make_dnn_application(
            "dnn1",
            trained_dnn,
            Requirements(target_fps=10.0),
            arrival_time_ms=1000.0,
            departure_time_ms=5000.0,
        )
        assert not app.is_active(500.0)
        assert app.is_active(1000.0)
        assert app.is_active(4999.0)
        assert not app.is_active(5000.0)

    def test_arvr_application_demands_gpu(self):
        app = make_arvr_application("arvr", target_fps=60.0)
        assert app.kind == TaskKind.ARVR
        assert app.demand.core_type == CoreType.GPU
        assert app.demand.min_frequency_mhz is not None

    def test_background_application(self):
        app = make_background_application("bg", cores=2, core_type=CoreType.CPU_BIG)
        assert app.kind == TaskKind.BACKGROUND
        assert app.demand.cores == 2

    def test_invalid_demand(self):
        with pytest.raises(ValueError):
            ResourceDemand(core_type=CoreType.GPU, cores=0)
        with pytest.raises(ValueError):
            ResourceDemand(core_type=CoreType.GPU, utilisation=0.0)
        with pytest.raises(ValueError):
            ResourceDemand(core_type=CoreType.GPU, min_frequency_mhz=-10.0)

    def test_invalid_timing_rejected(self, trained_dnn):
        with pytest.raises(ValueError):
            make_dnn_application(
                "x",
                trained_dnn,
                Requirements(target_fps=1.0),
                arrival_time_ms=100.0,
                departure_time_ms=50.0,
            )


class TestScenarios:
    def test_fig2_timeline_structure(self, trained_dnn):
        scenario = fig2_scenario(trained_factory=lambda: trained_dnn)
        assert scenario.platform_name == "odroid_xu3"
        assert {app.app_id for app in scenario.applications} == {"dnn1", "dnn2", "arvr"}
        events = scenario.events()
        kinds = [(event.time_ms, event.kind) for event in events]
        assert (0.0, ScenarioEventKind.APP_ARRIVAL) in kinds
        assert (5000.0, ScenarioEventKind.APP_ARRIVAL) in kinds
        assert (15000.0, ScenarioEventKind.APP_ARRIVAL) in kinds
        assert (25000.0, ScenarioEventKind.REQUIREMENT_CHANGE) in kinds
        # The requirement change relaxes DNN2's accuracy floor.
        change = [e for e in events if e.kind == ScenarioEventKind.REQUIREMENT_CHANGE][0]
        assert change.app_id == "dnn2"
        assert change.new_requirements.min_accuracy_percent < scenario.application(
            "dnn2"
        ).requirements.min_accuracy_percent

    def test_events_sorted_by_time(self, trained_dnn):
        scenario = fig2_scenario(trained_factory=lambda: trained_dnn)
        times = [event.time_ms for event in scenario.events()]
        assert times == sorted(times)

    def test_build_platform_returns_fresh_soc(self, trained_dnn):
        scenario = fig2_scenario(trained_factory=lambda: trained_dnn)
        first = scenario.build_platform()
        second = scenario.build_platform()
        assert first is not second
        assert first.name == "odroid_xu3"

    def test_single_dnn_scenario(self):
        scenario = single_dnn_scenario(duration_ms=2000.0)
        assert len(scenario.applications) == 1
        assert scenario.duration_ms == 2000.0

    def test_multi_dnn_scenario_staggers_arrivals(self):
        scenario = multi_dnn_scenario(num_dnns=3, stagger_ms=1000.0)
        arrivals = [app.arrival_time_ms for app in scenario.applications]
        assert arrivals == [0.0, 1000.0, 2000.0]

    def test_thermal_stress_scenario_has_big_core_stressor(self):
        scenario = thermal_stress_scenario()
        stress = scenario.application("stress")
        assert stress.demand.core_type == CoreType.CPU_BIG
        assert stress.demand.cores == 4

    def test_unknown_application_raises(self):
        scenario = single_dnn_scenario()
        with pytest.raises(KeyError):
            scenario.application("ghost")

    def test_duplicate_app_ids_rejected(self, trained_dnn):
        from repro.workloads.scenarios import Scenario

        app = make_dnn_application("dup", trained_dnn, Requirements(target_fps=1.0))
        other = make_dnn_application("dup", trained_dnn, Requirements(target_fps=1.0))
        with pytest.raises(ValueError, match="duplicate"):
            Scenario("bad", "odroid_xu3", [app, other], duration_ms=1000.0)

    def test_registry_contains_all_builders(self):
        # The paper's own timelines are always registered; the registry also
        # carries the synthetic scenario families (tested in
        # test_scenario_registry.py).
        assert {"fig2", "single_dnn", "multi_dnn", "thermal_stress"} <= set(SCENARIO_BUILDERS)


class TestWorkloadGenerator:
    def test_deterministic_for_seed(self, trained_dnn):
        config = WorkloadGeneratorConfig(num_dnn_apps=3, num_background_apps=1)
        a = WorkloadGenerator(config, seed=11, trained=trained_dnn).generate()
        b = WorkloadGenerator(config, seed=11, trained=trained_dnn).generate()
        assert [app.app_id for app in a.applications] == [app.app_id for app in b.applications]
        assert [app.arrival_time_ms for app in a.applications] == [
            app.arrival_time_ms for app in b.applications
        ]

    def test_different_seeds_differ(self, trained_dnn):
        config = WorkloadGeneratorConfig(num_dnn_apps=3)
        a = WorkloadGenerator(config, seed=1, trained=trained_dnn).generate()
        b = WorkloadGenerator(config, seed=2, trained=trained_dnn).generate()
        assert [app.arrival_time_ms for app in a.applications] != [
            app.arrival_time_ms for app in b.applications
        ]

    def test_counts_respected(self, trained_dnn):
        config = WorkloadGeneratorConfig(num_dnn_apps=4, num_background_apps=2)
        scenario = WorkloadGenerator(config, seed=0, trained=trained_dnn).generate()
        dnn_apps = [a for a in scenario.applications if a.kind == TaskKind.DNN_INFERENCE]
        background = [a for a in scenario.applications if a.kind == TaskKind.BACKGROUND]
        assert len(dnn_apps) == 4
        assert len(background) == 2

    def test_requirements_within_configured_ranges(self, trained_dnn):
        config = WorkloadGeneratorConfig(num_dnn_apps=5, fps_range=(5.0, 10.0))
        scenario = WorkloadGenerator(config, seed=3, trained=trained_dnn).generate()
        for app in scenario.applications:
            if app.kind == TaskKind.DNN_INFERENCE:
                assert 5.0 <= app.requirements.target_fps <= 10.0

    def test_generate_many(self, trained_dnn):
        generator = WorkloadGenerator(WorkloadGeneratorConfig(num_dnn_apps=1), seed=5, trained=trained_dnn)
        scenarios = generator.generate_many(3)
        assert len(scenarios) == 3
        assert len({s.name for s in scenarios}) == 3

    def test_generate_many_child_seed_contract(self, trained_dnn):
        # The derivation is increment-by-one and documented: child i of root
        # seed s is bit-identical to a standalone generator at seed s + i.
        config = WorkloadGeneratorConfig(num_dnn_apps=2)
        generator = WorkloadGenerator(config, seed=5, trained=trained_dnn)
        assert generator.child_seeds(3) == [5, 6, 7]
        children = generator.generate_many(3)
        for child_seed, child in zip(generator.child_seeds(3), children):
            standalone = WorkloadGenerator(config, seed=child_seed, trained=trained_dnn).generate()
            assert [a.app_id for a in child.applications] == [
                a.app_id for a in standalone.applications
            ]
            assert [a.arrival_time_ms for a in child.applications] == [
                a.arrival_time_ms for a in standalone.applications
            ]
            assert [a.requirements for a in child.applications] == [
                a.requirements for a in standalone.applications
            ]

    def test_generate_many_prefix_sharing_is_the_flip_side(self, trained_dnn):
        # Documented surprise of the increment derivation: adjacent roots and
        # differing counts share scenarios.  generate_many(n) from root s and
        # generate_many(m) from root s + 1 overlap on all but one child.
        config = WorkloadGeneratorConfig(num_dnn_apps=2)
        wide = WorkloadGenerator(config, seed=0, trained=trained_dnn).generate_many(3)
        shifted = WorkloadGenerator(config, seed=1, trained=trained_dnn).generate_many(2)
        for left, right in zip(wide[1:], shifted):
            assert left.name == right.name
            assert [a.arrival_time_ms for a in left.applications] == [
                a.arrival_time_ms for a in right.applications
            ]

    def test_generate_many_rejects_non_positive_count(self, trained_dnn):
        generator = WorkloadGenerator(seed=0, trained=trained_dnn)
        with pytest.raises(ValueError):
            generator.generate_many(0)
        with pytest.raises(ValueError):
            generator.child_seeds(-1)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            WorkloadGeneratorConfig(num_dnn_apps=-1)
        with pytest.raises(ValueError):
            WorkloadGeneratorConfig(duration_ms=0.0)
